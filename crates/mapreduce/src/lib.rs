//! # incmr-mapreduce
//!
//! A from-scratch MapReduce execution framework in the mould of Hadoop
//! 0.20, running on the `incmr-simkit` discrete-event kernel. This is the
//! substrate the paper's Input Provider mechanism (in `incmr-core`) plugs
//! into.
//!
//! What is modelled (because the paper's evaluation depends on it):
//!
//! * jobs → map tasks over DFS input splits, one map slot per task, a
//!   configurable slot count per node (4 single-user / 16 multi-user);
//! * pluggable [`scheduler::TaskScheduler`]s — [`scheduler::FifoScheduler`]
//!   (Hadoop default) and [`scheduler::FairScheduler`] (delay scheduling);
//! * a physical cost model ([`cost::CostModel`]): task start-up overhead,
//!   processor-shared disks, per-node CPU sharing, network penalty for
//!   non-local reads;
//! * the **growth hook** ([`job::GrowthDriver`]): a job consumes input
//!   incrementally, the runtime re-evaluates the driver on a fixed
//!   interval, and the reduce phase starts only after end-of-input *and*
//!   all scheduled maps complete (paper Section III-A);
//! * cluster metrics matching the paper's instrumentation: CPU %, disk
//!   KB/s, locality %, slot occupancy %;
//! * the fault-tolerance plane ([`faults`]): TaskTracker death and rejoin
//!   on a simulated schedule, map/reduce attempt faults, stragglers,
//!   speculative execution, per-job blacklisting — with Hadoop's
//!   re-execution semantics, deterministically (see DESIGN.md §8);
//! * a **columnar data plane** (DESIGN.md §12): `ScanMode::Full`/
//!   `Planted` splits arrive as shared `Arc<RecordBatch>`es
//!   ([`exec::SplitData`]), mappers may emit [`exec::KeyedBatch`]
//!   selection-vector handles instead of pairs, and the shuffle carries
//!   them unmaterialised ([`shuffle::ValueSeq`]) until the reduce
//!   boundary; `FullRows`/`PlantedRows` keep the row-at-a-time
//!   reference path;
//! * the **replication plane** (DESIGN.md §14): opt-in DataNode-death
//!   semantics ([`runtime::MrRuntime::enable_data_loss`]) over rack-aware
//!   replica placement, read failover, typed input-loss handling
//!   ([`job::JobError::InputLost`]), and a simulated-time re-replication
//!   daemon ([`runtime::MrRuntime::enable_re_replication`]).
//!
//! What is deliberately not modelled: multi-wave reduces (the paper's jobs
//! use a single reduce).

pub mod approx;
pub mod cluster;
pub mod conf;
pub mod cost;
pub mod exec;
pub mod faults;
pub mod job;
pub mod memo;
pub mod metrics;
pub mod obs;
pub mod parallel;
pub mod runtime;
pub mod scheduler;
pub mod shuffle;
pub mod trace;

pub use approx::{
    agg_plan_of, decode_funcs, decode_group_part, encode_funcs, encode_group_part, evaluate_bound,
    fold_parts, z_quantile, AggKind, AggOutcome, AggPlan, AggProbe, AggReport, BoundEval,
    GroupAccum, SplitAggPart, DEFAULT_AGG_ROUNDS,
};
pub use cluster::{ClusterConfig, ClusterStatus, Parallelism};
pub use conf::{keys, JobConf};
pub use cost::CostModel;
pub use exec::{
    batches_to_pairs, Combiner, DatasetInputFormat, IdentityReducer, InputFormat, Key, KeyedBatch,
    MapResult, Mapper, Reducer, ScanMode, SplitData,
};
pub use faults::{
    ClusterFaultPlan, FaultConfigError, NodeOutage, SpecCandidate, SpeculationConfig,
};
pub use job::{
    EvalContext, GrowthDirective, GrowthDriver, GrowthOutcome, JobConfigError, JobError, JobId,
    JobProgress, JobResult, JobSpec, JobSpecBuilder, ProviderError, ProviderStage, StaticDriver,
    TaskId,
};
pub use memo::{signature_of_conf, MemoEntry, MemoProbe, MemoStore};
pub use metrics::{
    ClusterMetrics, FaultMetrics, GuardrailMetrics, HostPhaseNanos, MemoMetrics, MetricsReport,
    ReplicaMetrics, ShuffleMetrics,
};
pub use obs::{
    audited_splits_added, encode_event, encode_trace, kind_name, parse_event, parse_trace,
    render_audit, render_swimlanes, AuditDirective, AuditRecord, JsonlSink, MemorySink,
    MetricsRegistry, TraceParseError, TraceSink,
};
pub use parallel::{
    MapTaskResult, MapUnit, ParallelExecutor, ReduceTaskResult, ReduceUnit, UnitHandle, WorkUnit,
};
pub use runtime::{FaultPlan, MrRuntime, DEFAULT_MAX_IDLE_EVALUATIONS, MATERIALIZE_CAP_KEY};
pub use scheduler::{
    Assignment, Claims, FairScheduler, FifoScheduler, IndexedFairScheduler, IndexedFifoScheduler,
    SchedJob, SchedView, TaskScheduler, ViewPolicy,
};
pub use shuffle::{fnv1a, partition_of, PartitionBuffer, PartitionedPairs, ShuffleState, ValueSeq};
pub use trace::{job_timeline, render_timeline, JobTimeline, TraceEvent, TraceKind};

/// One-line import for framework users: `use incmr_mapreduce::prelude::*;`
/// brings in the types almost every job-building call site needs.
pub mod prelude {
    pub use crate::cluster::{ClusterConfig, ClusterStatus, Parallelism};
    pub use crate::conf::{keys, JobConf};
    pub use crate::cost::CostModel;
    pub use crate::exec::{
        Combiner, DatasetInputFormat, IdentityReducer, InputFormat, Key, KeyedBatch, MapResult,
        Mapper, Reducer, ScanMode, SplitData,
    };
    pub use crate::job::{
        EvalContext, GrowthDirective, GrowthDriver, GrowthOutcome, JobError, JobId, JobProgress,
        JobResult, JobSpec, ProviderError, ProviderStage, StaticDriver, TaskId,
    };
    pub use crate::obs::{AuditRecord, MetricsRegistry, TraceSink};
    pub use crate::runtime::MrRuntime;
    pub use crate::scheduler::{FairScheduler, FifoScheduler, TaskScheduler};
}

#[cfg(test)]
mod tests {
    use std::cell::Cell;
    use std::rc::Rc;
    use std::sync::Arc;

    use incmr_data::{Dataset, DatasetSpec, Record, SkewLevel, Value};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;
    use incmr_simkit::{SimDuration, SimTime};

    use crate::cluster::ClusterConfig;
    use crate::cost::CostModel;
    use crate::exec::{DatasetInputFormat, Key, MapResult, Mapper, ScanMode, SplitData};
    use crate::job::{EvalContext, GrowthDirective, GrowthDriver, JobSpec, StaticDriver};
    use crate::runtime::MrRuntime;
    use crate::scheduler::{FairScheduler, FifoScheduler};
    use crate::ClusterStatus;
    use incmr_dfs::BlockId;

    /// A mapper that emits every matching record under one dummy key —
    /// zero-copy when the split arrives as a batch, rows otherwise.
    struct MatchAllMapper;

    impl Mapper for MatchAllMapper {
        fn run(&self, data: SplitData) -> MapResult {
            match data {
                SplitData::PlantedBatch {
                    total_records,
                    matches,
                } => MapResult {
                    batches: vec![crate::exec::KeyedBatch {
                        key: Key::from("k"),
                        rows: incmr_data::BatchSelection::all(matches),
                    }],
                    records_read: total_records,
                    ..MapResult::default()
                },
                SplitData::Planted {
                    total_records,
                    matches,
                } => {
                    let key = Key::from("k");
                    MapResult {
                        pairs: matches.into_iter().map(|r| (Key::clone(&key), r)).collect(),
                        records_read: total_records,
                        ..MapResult::default()
                    }
                }
                full => MapResult {
                    records_read: full.total_records(),
                    ..MapResult::default()
                },
            }
        }
    }

    fn small_world(partitions: u32, records: u64) -> (MrRuntime, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(5);
        let spec = DatasetSpec::small("t", partitions, records, SkewLevel::Zero, 5);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FifoScheduler::new()),
        );
        (rt, ds)
    }

    fn static_job(ds: &Arc<Dataset>) -> (JobSpec, Box<StaticDriver>) {
        let spec = JobSpec::builder()
            .input(DatasetInputFormat::new(Arc::clone(ds), ScanMode::Planted))
            .mapper(MatchAllMapper)
            .build();
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        (spec, Box::new(StaticDriver::new(blocks)))
    }

    #[test]
    fn static_job_processes_all_splits_and_finds_all_matches() {
        let (mut rt, ds) = small_world(12, 2_000);
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        assert!(rt.is_complete(id));
        let r = rt.job_result(id);
        assert_eq!(r.splits_processed, 12);
        assert_eq!(r.records_processed, 24_000);
        assert_eq!(r.map_output_records, ds.total_matching());
        assert_eq!(r.output.len() as u64, ds.total_matching());
        assert!(r.response_time() > SimDuration::ZERO);
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let (mut rt, ds) = small_world(12, 2_000);
            let (spec, driver) = static_job(&ds);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            (rt.job_result(id).response_time(), rt.now())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn response_time_grows_with_input_size() {
        let time_for = |partitions| {
            let (mut rt, ds) = small_world(partitions, 20_000);
            let (spec, driver) = static_job(&ds);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            rt.job_result(id).response_time()
        };
        let small = time_for(40);
        let large = time_for(160);
        assert!(
            large > small * 2,
            "4x the input should take much longer on 40 slots: {small} vs {large}"
        );
    }

    #[test]
    fn concurrent_jobs_share_the_cluster() {
        let (mut rt, ds) = small_world(40, 5_000);
        let (spec_a, driver_a) = static_job(&ds);
        let (spec_b, driver_b) = static_job(&ds);
        let a = rt.submit(spec_a, driver_a);
        let b = rt.submit(spec_b, driver_b);
        rt.run_until_idle();
        assert!(rt.is_complete(a) && rt.is_complete(b));
        // Cluster status is quiescent at the end.
        let s = rt.cluster_status();
        assert_eq!(s.occupied_map_slots, 0);
        assert_eq!(s.running_jobs, 0);
        assert_eq!(s.queued_map_tasks, 0);
    }

    #[test]
    fn metrics_record_assignments_and_locality() {
        let (mut rt, ds) = small_world(40, 2_000);
        let (spec, driver) = static_job(&ds);
        rt.submit(spec, driver);
        rt.run_until_idle();
        let report = rt.metrics().report(rt.now());
        assert_eq!(rt.metrics().assignments(), 40);
        assert!(report.locality_pct > 0.0);
        assert!(report.slot_occupancy_pct > 0.0);
    }

    #[test]
    fn fair_scheduler_runs_jobs_to_completion_too() {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(5);
        let spec = DatasetSpec::small("t", 20, 1_000, SkewLevel::Zero, 5);
        let ds = Arc::new(Dataset::build(
            &mut ns,
            spec,
            &mut EvenRoundRobin::new(),
            &mut rng,
        ));
        let mut rt = MrRuntime::new(
            ClusterConfig::paper_single_user(),
            CostModel::paper_default(),
            ns,
            Box::new(FairScheduler::paper_default()),
        );
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        assert!(rt.is_complete(id));
        assert_eq!(rt.job_result(id).splits_processed, 20);
    }

    /// A driver that adds splits in fixed-size increments, ending input when
    /// exhausted — exercises the incremental path without `incmr-core`.
    struct DripDriver {
        splits: Vec<BlockId>,
        step: usize,
        calls: Rc<Cell<u32>>,
    }

    impl GrowthDriver for DripDriver {
        fn initial_input(&mut self, _c: &ClusterStatus) -> Vec<BlockId> {
            let n = self.step.min(self.splits.len());
            self.splits.drain(..n).collect()
        }

        fn evaluate(&mut self, _ctx: EvalContext<'_>) -> GrowthDirective {
            self.calls.set(self.calls.get() + 1);
            if self.splits.is_empty() {
                GrowthDirective::EndOfInput
            } else {
                let n = self.step.min(self.splits.len());
                GrowthDirective::AddInput(self.splits.drain(..n).collect())
            }
        }

        fn evaluation_interval(&self) -> SimDuration {
            SimDuration::from_secs(4)
        }
    }

    #[test]
    fn incremental_driver_is_reevaluated_until_end_of_input() {
        let (mut rt, ds) = small_world(10, 1_000);
        let (mut spec, _) = static_job(&ds);
        spec.conf.set("mapred.job.name", "drip");
        let calls = Rc::new(Cell::new(0u32));
        let driver = Box::new(DripDriver {
            splits: ds.splits().iter().map(|p| p.block).collect(),
            step: 3,
            calls: Rc::clone(&calls),
        });
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        assert!(rt.is_complete(id));
        let r = rt.job_result(id);
        assert_eq!(r.splits_processed, 10, "all drip-fed splits processed");
        // initial 3, then +3, +3, +1, then EndOfInput — at least 4 evaluations.
        assert!(calls.get() >= 4, "driver evaluated {} times", calls.get());
    }

    #[test]
    fn materialize_cap_bounds_outputs_but_not_counters() {
        let (mut rt, ds) = small_world(12, 2_000);
        let (mut spec, driver) = static_job(&ds);
        spec.conf.set(crate::MATERIALIZE_CAP_KEY, 5);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 5, "reduce sees only the cap");
        assert_eq!(
            r.map_output_records,
            ds.total_matching(),
            "counters see everything"
        );
    }

    #[test]
    fn run_until_any_completion_interleaves_with_submission() {
        let (mut rt, ds) = small_world(8, 500);
        let (spec, driver) = static_job(&ds);
        let a = rt.submit(spec.clone(), driver);
        let done = rt.run_until_any_completion();
        assert_eq!(done, Some(a));
        // Submit a follow-up job at the current (advanced) time.
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        let b = rt.submit(spec, Box::new(StaticDriver::new(blocks)));
        let done = rt.run_until_any_completion();
        assert_eq!(done, Some(b));
        let ra = rt.job_result(a);
        let rb = rt.job_result(b);
        assert!(rb.submit_time >= ra.finish_time);
    }

    #[test]
    fn run_until_respects_time_limit() {
        let (mut rt, ds) = small_world(40, 50_000);
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until(SimTime::from_secs(2));
        assert!(!rt.is_complete(id), "a 40-split job cannot finish in 2 s");
        assert_eq!(rt.now(), SimTime::from_secs(2));
        rt.run_until_idle();
        assert!(rt.is_complete(id));
    }

    #[test]
    fn reset_metrics_discards_warmup() {
        let (mut rt, ds) = small_world(20, 2_000);
        let (spec, driver) = static_job(&ds);
        rt.submit(spec.clone(), driver);
        rt.run_until_idle();
        let before = rt.metrics().assignments();
        assert_eq!(before, 20);
        rt.reset_metrics();
        assert_eq!(rt.metrics().assignments(), 0);
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        rt.submit(spec, Box::new(StaticDriver::new(blocks)));
        rt.run_until_idle();
        assert_eq!(rt.metrics().assignments(), 20);
    }

    #[test]
    fn full_scan_mode_executes_real_predicate() {
        // Same job in Full mode: mapper sees raw records; we use a mapper
        // that filters with the dataset's real predicate.
        struct FilterMapper {
            pred: incmr_data::Predicate,
        }
        impl Mapper for FilterMapper {
            fn run(&self, data: SplitData) -> MapResult {
                let SplitData::Batch(batch) = data else {
                    panic!("expected full batch mode")
                };
                let records_read = batch.len() as u64;
                let sel = self.pred.eval_batch(&batch);
                MapResult {
                    batches: vec![crate::exec::KeyedBatch {
                        key: Key::from("k"),
                        rows: incmr_data::BatchSelection::new(batch, sel, Arc::from([])),
                    }],
                    records_read,
                    ..MapResult::default()
                }
            }
        }
        let (mut rt, ds) = small_world(6, 800);
        use incmr_data::generator::RecordFactory;
        let pred = ds.factory().predicate();
        let spec = JobSpec::builder()
            .input(DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full))
            .mapper(FilterMapper { pred })
            .build();
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        let id = rt.submit(spec, Box::new(StaticDriver::new(blocks)));
        rt.run_until_idle();
        assert_eq!(rt.job_result(id).map_output_records, ds.total_matching());
    }

    #[test]
    fn pinned_placement_forces_remote_reads_and_slows_the_job() {
        use incmr_dfs::{DiskId, PinnedPlacement};
        let run = |pinned: bool| {
            let mut ns = Namespace::new(ClusterTopology::paper_cluster());
            let mut rng = DetRng::seed_from(5);
            let spec = DatasetSpec::small("t", 40, 200_000, SkewLevel::Zero, 5);
            let ds = Arc::new(if pinned {
                Dataset::build(
                    &mut ns,
                    spec,
                    &mut PinnedPlacement::new(DiskId(0)),
                    &mut rng,
                )
            } else {
                Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng)
            });
            let mut rt = MrRuntime::new(
                ClusterConfig::paper_single_user(),
                CostModel::paper_default(),
                ns,
                Box::new(FifoScheduler::new()),
            );
            let (spec, driver) = static_job(&ds);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            (
                rt.job_result(id).locality(),
                rt.job_result(id).response_time(),
            )
        };
        let (even_locality, even_time) = run(false);
        let (pinned_locality, pinned_time) = run(true);
        assert!(
            even_locality > 0.9,
            "even layout is almost fully local: {even_locality}"
        );
        assert!(
            pinned_locality < 0.25,
            "everything on node 0 leaves 36 of 40 slots remote: {pinned_locality}"
        );
        assert!(
            pinned_time > even_time,
            "remote reads + one hot disk must cost time: {pinned_time} vs {even_time}"
        );
    }

    #[test]
    fn fault_injection_retries_and_still_completes() {
        let (mut rt, ds) = small_world(12, 2_000);
        rt.inject_faults(crate::FaultPlan {
            probability: 0.3,
            max_attempts: 10,
            seed: 5,
        })
        .expect("valid plan");
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert!(!r.failed);
        assert!(
            r.task_failures > 0,
            "a 30% fault rate over 12 tasks should fail at least once"
        );
        assert_eq!(r.splits_processed, 12, "every split eventually completes");
        assert_eq!(
            r.map_output_records,
            ds.total_matching(),
            "retries do not duplicate output"
        );
    }

    #[test]
    fn exhausted_attempts_fail_the_job() {
        let (mut rt, ds) = small_world(4, 500);
        rt.inject_faults(crate::FaultPlan {
            probability: 0.999,
            max_attempts: 2,
            seed: 7,
        })
        .expect("valid plan");
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert!(r.failed);
        assert!(r.output.is_empty());
        assert!(r.task_failures >= 2);
        // The cluster is quiescent and reusable after a job failure.
        let s = rt.cluster_status();
        assert_eq!(s.occupied_map_slots, 0);
        let (spec2, driver2) = static_job(&ds);
        rt.faults_off_for_test();
        let id2 = rt.submit(spec2, driver2);
        rt.run_until_idle();
        assert!(!rt.job_result(id2).failed);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        let run = || {
            let (mut rt, ds) = small_world(10, 1_000);
            rt.inject_faults(crate::FaultPlan {
                probability: 0.4,
                max_attempts: 8,
                seed: 11,
            })
            .expect("valid plan");
            let (spec, driver) = static_job(&ds);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            let r = rt.job_result(id);
            (r.task_failures, r.response_time())
        };
        assert_eq!(run(), run());
    }

    /// A mapper spreading outputs over many keys (for multi-reduce tests).
    struct ManyKeyMapper;
    impl Mapper for ManyKeyMapper {
        fn run(&self, data: SplitData) -> MapResult {
            let records_read = data.total_records();
            let (SplitData::Planted { matches, .. } | SplitData::Records(matches)) =
                data.into_rows()
            else {
                unreachable!()
            };
            MapResult {
                pairs: matches
                    .into_iter()
                    .enumerate()
                    .map(|(i, r)| (Key::from(format!("key{}", i % 7)), r))
                    .collect(),
                records_read,
                ..MapResult::default()
            }
        }
    }

    #[test]
    fn multi_reduce_partitions_by_key_and_reassembles_everything() {
        // 12 × 20k records at 0.05% → 10 matches per split: every one of
        // the seven keys occurs.
        let (mut rt, ds) = small_world(12, 20_000);
        let (mut spec, driver) = static_job(&ds);
        spec.mapper = Arc::new(ManyKeyMapper);
        spec.conf.set(crate::keys::NUM_REDUCE_TASKS, 4);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(
            r.output.len() as u64,
            ds.total_matching(),
            "nothing lost across partitions"
        );
        // Each key's values stay together: identity-reduced pairs with the
        // same key are contiguous in the output.
        let mut seen = std::collections::HashSet::new();
        let mut last: Option<&str> = None;
        for (k, _) in &r.output {
            if last != Some(&**k) {
                assert!(seen.insert(k.clone()), "key {k} split across reduce groups");
                last = Some(k);
            }
        }
        assert_eq!(seen.len(), 7, "all seven keys reduced");
    }

    #[test]
    fn reduce_slot_contention_serialises_excess_reduces() {
        // 25 reduces on a 20-reduce-slot cluster launch in waves (one per
        // node heartbeat), so the reduce phase costs real time compared to
        // a single reduce — and everything still completes exactly.
        let run = |reduces: u32| {
            let (mut rt, ds) = small_world(12, 20_000);
            let (mut spec, driver) = static_job(&ds);
            spec.mapper = Arc::new(ManyKeyMapper);
            spec.conf.set(crate::keys::NUM_REDUCE_TASKS, reduces);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            let r = rt.job_result(id).clone();
            assert_eq!(r.output.len() as u64, ds.total_matching());
            r.response_time()
        };
        let one = run(1);
        let many = run(25);
        assert!(
            many > one,
            "launch pacing and overheads must cost time: 25 reduces {many} vs one {one}"
        );
    }

    #[test]
    fn release_job_result_keeps_scalars_drops_bulk() {
        let (mut rt, ds) = small_world(8, 2_000);
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let before = rt.job_result(id).clone();
        assert!(!before.output.is_empty());
        rt.release_job_result(id);
        let after = rt.job_result(id);
        assert!(after.output.is_empty(), "bulk rows dropped");
        assert_eq!(after.splits_processed, before.splits_processed);
        assert_eq!(after.records_processed, before.records_processed);
        assert_eq!(after.response_time(), before.response_time());
        // Idempotent.
        rt.release_job_result(id);
    }

    #[test]
    #[should_panic(expected = "cannot release a live job")]
    fn release_of_live_job_panics() {
        let (mut rt, ds) = small_world(4, 500);
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.release_job_result(id);
    }

    #[test]
    fn tracing_records_the_whole_job_lifecycle() {
        use crate::trace::{job_timeline, render_timeline, TraceKind};
        let (mut rt, ds) = small_world(6, 2_000);
        rt.enable_tracing();
        let (spec, driver) = static_job(&ds);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let trace = rt.take_trace();
        assert!(matches!(
            trace.first().unwrap().kind,
            TraceKind::JobSubmitted { .. }
        ));
        assert!(matches!(
            trace.last().unwrap().kind,
            TraceKind::JobCompleted { failed: false, .. }
        ));
        let t = job_timeline(&trace, id).expect("traced job has a timeline");
        assert_eq!(t.maps, (6, 6, 0));
        assert_eq!(t.reduces, (1, 1));
        assert_eq!(t.growth, vec![(t.submitted, 6)]);
        assert!(t.end_of_input.is_some());
        // The clock runs on briefly (heartbeat chains drain); the traced
        // completion matches the job result exactly.
        assert_eq!(t.completed, Some(rt.job_result(id).finish_time));
        let chart = render_timeline(&trace, 20);
        assert!(chart.contains("job_0000 |"));
        // Taking the trace leaves tracing enabled with a fresh buffer.
        assert!(rt.take_trace().is_empty());
    }

    #[test]
    fn trace_is_empty_without_enable() {
        let (mut rt, ds) = small_world(3, 500);
        let (spec, driver) = static_job(&ds);
        rt.submit(spec, driver);
        rt.run_until_idle();
        assert!(rt.take_trace().is_empty());
    }

    #[test]
    fn trace_records_failures() {
        use crate::trace::TraceKind;
        let (mut rt, ds) = small_world(4, 500);
        rt.enable_tracing();
        rt.inject_faults(crate::FaultPlan {
            probability: 0.999,
            max_attempts: 2,
            seed: 3,
        })
        .expect("valid plan");
        let (spec, driver) = static_job(&ds);
        rt.submit(spec, driver);
        rt.run_until_idle();
        let trace = rt.take_trace();
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::MapFailed { .. })));
        assert!(trace
            .iter()
            .any(|e| matches!(e.kind, TraceKind::JobCompleted { failed: true, .. })));
    }

    #[test]
    fn multi_reduce_results_are_deterministic() {
        let run = || {
            let (mut rt, ds) = small_world(10, 3_000);
            let (mut spec, driver) = static_job(&ds);
            spec.mapper = Arc::new(ManyKeyMapper);
            spec.conf.set(crate::keys::NUM_REDUCE_TASKS, 3);
            let id = rt.submit(spec, driver);
            rt.run_until_idle();
            let r = rt.job_result(id);
            (
                r.output.iter().map(|(k, _)| k.clone()).collect::<Vec<_>>(),
                r.response_time(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn reducer_sees_groups_in_first_seen_key_order() {
        struct TwoKeyMapper;
        impl Mapper for TwoKeyMapper {
            fn run(&self, data: SplitData) -> MapResult {
                MapResult {
                    pairs: vec![
                        ("b".into(), Record::new(vec![Value::Int(1)])),
                        ("a".into(), Record::new(vec![Value::Int(2)])),
                    ],
                    records_read: data.total_records(),
                    ..MapResult::default()
                }
            }
        }
        let (mut rt, ds) = small_world(1, 100);
        let spec = JobSpec::builder()
            .input(DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Planted))
            .mapper(TwoKeyMapper)
            .build();
        let blocks = ds.splits().iter().map(|p| p.block).collect();
        let id = rt.submit(spec, Box::new(StaticDriver::new(blocks)));
        rt.run_until_idle();
        let out = &rt.job_result(id).output;
        assert_eq!(out.len(), 2);
        assert_eq!(&*out[0].0, "b", "first-seen key reduces first");
        assert_eq!(&*out[1].0, "a");
    }

    /// A combiner keeping at most `limit` pairs per map task.
    struct TruncateCombiner {
        limit: usize,
    }
    impl crate::exec::Combiner for TruncateCombiner {
        fn combine(&self, mut pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)> {
            pairs.truncate(self.limit);
            pairs
        }
    }

    #[test]
    fn combiner_shrinks_shuffle_and_is_traced() {
        use crate::trace::TraceKind;
        // 12 splits; the combiner keeps 2 pairs per map task.
        let (mut rt, ds) = small_world(12, 20_000);
        rt.enable_tracing();
        let (mut spec, driver) = static_job(&ds);
        spec.combiner = Some(Arc::new(TruncateCombiner { limit: 2 }));
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 24, "2 survivors × 12 maps");
        assert_eq!(
            r.map_output_records, 24,
            "post-combine records are what the job accounts"
        );
        let shuffle = rt.metrics().shuffle();
        assert_eq!(shuffle.combiner_input_records, ds.total_matching());
        assert_eq!(shuffle.combiner_output_records, 24);
        let trace = rt.take_trace();
        let ready = trace
            .iter()
            .find_map(|e| match e.kind {
                TraceKind::ShuffleReady {
                    combiner_in,
                    combiner_out,
                    partitions,
                    ..
                } => Some((combiner_in, combiner_out, partitions)),
                _ => None,
            })
            .expect("shuffle-ready event traced");
        assert_eq!(ready, (ds.total_matching(), 24, 1));
    }

    #[test]
    fn combiner_composes_with_materialize_cap() {
        let (mut rt, ds) = small_world(12, 20_000);
        let (mut spec, driver) = static_job(&ds);
        spec.combiner = Some(Arc::new(TruncateCombiner { limit: 3 }));
        spec.conf.set(crate::MATERIALIZE_CAP_KEY, 5);
        let id = rt.submit(spec, driver);
        rt.run_until_idle();
        let r = rt.job_result(id);
        assert_eq!(r.output.len(), 5, "cap applies after the combiner");
        assert_eq!(r.map_output_records, 36, "3 survivors × 12 maps counted");
    }

    #[test]
    fn host_phase_timers_observe_data_plane_work() {
        let (mut rt, ds) = small_world(8, 2_000);
        let (spec, driver) = static_job(&ds);
        rt.submit(spec, driver);
        rt.run_until_idle();
        let host = rt.metrics().host_phase_nanos();
        assert!(host.map_ns > 0, "map units timed");
        assert!(host.reduce_ns > 0, "reduce units timed");
    }
}
