//! The discrete-event MapReduce runtime: JobTracker, TaskTrackers, and the
//! physical model, in one deterministic event loop.
//!
//! ## Execution model
//!
//! A submitted job's [`GrowthDriver`] supplies its initial splits; each
//! split becomes a pending map task. At every *scheduling point* (submit,
//! input added, task finished, heartbeat) the pluggable [`TaskScheduler`]
//! matches free map slots to pending tasks. A running map task passes
//! through three stages, each modelled on shared resources:
//!
//! 1. **start-up overhead** — fixed delay (Hadoop task launch),
//! 2. **disk read** — a flow of `split-bytes` on the source disk's
//!    processor-sharing resource; non-local reads add a network transfer,
//! 3. **CPU** — a flow of `records × cost` core-µs on the node's shared
//!    CPU resource.
//!
//! Map *semantics* (the user's mapper over real records, plus the optional
//! combiner and the hash partitioning into `mapred.reduce.tasks` buckets)
//! execute on the data-plane worker pool, submitted at dispatch; the
//! stages only decide *when* the results land. Each completed map's
//! pre-partitioned output is merged into the per-reduce shuffle buffers at
//! its simulated completion (streaming shuffle — see [`crate::shuffle`]),
//! so entering the reduce phase costs O(`reduce_tasks`). Dynamic jobs are
//! re-evaluated every `EvaluationInterval`; once the driver declares
//! end-of-input and all scheduled maps finish, the buffered reduce tasks
//! (one for the paper's sampling jobs) queue for per-node reduce slots,
//! run the user reducer on the data plane, and complete the job when the
//! last one commits.
//!
//! Everything — including the schedulers' tie-breaking — is deterministic,
//! so a run is a pure function of configuration and seeds.
//!
//! ## Fault tolerance
//!
//! [`MrRuntime::inject_cluster_faults`] arms the cluster-level fault model
//! (see [`crate::faults`] and DESIGN.md §8): nodes die and rejoin on a
//! simulated schedule, map and reduce attempts fail with seeded
//! probabilities, slow nodes straggle, and the runtime answers with
//! Hadoop's semantics — killed attempts are cancelled mid-stage, completed
//! maps whose host died are re-executed (their stored output is gone),
//! laggard attempts get speculative backups, and jobs blacklist nodes that
//! repeatedly fail their attempts. Map output is merged into the shuffle
//! in *task-id order* ([`ShuffleState::merge_task`]), so the surviving
//! output is a pure function of the task set — identical across thread
//! counts and, for completed jobs, identical to the fault-free run.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use incmr_dfs::{BlockId, DiskId, Namespace, NodeId, RackId};
use incmr_simkit::resource::{FlowId, PsResource};
use incmr_simkit::rng::DetRng;
use incmr_simkit::{EventId, Sim, SimDuration, SimTime};

use crate::approx::{
    agg_plan_of, decode_group_part, evaluate_bound, fold_parts, rel_to_ppm, AggOutcome, AggPlan,
    AggProbe, AggReport, SplitAggPart,
};
use crate::cluster::{ClusterConfig, ClusterStatus};
use crate::conf::{keys, ConfError};
use crate::cost::CostModel;
use crate::exec::Key;
pub use crate::faults::FaultPlan;
use crate::faults::{pick_speculative, ClusterFaultPlan, FaultConfigError, SpecCandidate};
use crate::job::{
    EvalContext, GrowthDirective, GrowthDriver, JobConfigError, JobError, JobId, JobProgress,
    JobResult, JobSpec, ProviderError, ProviderStage, TaskId,
};
use crate::memo::{signature_of_conf, MemoProbe, MemoStore};
use crate::metrics::ClusterMetrics;
use crate::obs::{AuditDirective, AuditRecord, JsonlSink, MetricsRegistry, TraceSink};
use crate::parallel::{
    MapTaskResult, MapUnit, ParallelExecutor, ReduceTaskResult, ReduceUnit, UnitHandle,
};
use crate::scheduler::{SchedJob, SchedView, TaskScheduler, ViewPolicy};
use crate::shuffle::ShuffleState;
use crate::trace::{TraceEvent, TraceKind};
use incmr_data::Record;

/// Conf key bounding how many map-output records a job materialises (the
/// rest are tracked as counts/bytes only). Sampling jobs set this to `k`.
pub const MATERIALIZE_CAP_KEY: &str = "mapred.job.materialize.cap";

/// Default livelock-watchdog threshold: a job whose driver produces this
/// many consecutive unproductive evaluations (no new splits) while nothing
/// is running or pending is failed as wedged instead of spinning its
/// evaluation tick forever. Override per job with
/// `dynamic.job.max.idle.evaluations` (`0` disables). The default is
/// generous: an honest provider with nothing outstanding either ends its
/// input or asks for work within a handful of evaluations.
pub const DEFAULT_MAX_IDLE_EVALUATIONS: u32 = 256;

/// Interval at which resource counters are folded into metrics series (the
/// paper samples at 30 s).
const METRICS_INTERVAL: SimDuration = SimDuration::from_secs(30);

/// Extra jobs (beyond the free-slot count) included in a prefix scheduling
/// view (see [`ViewPolicy`]). One heartbeat launches at most `free_total`
/// tasks, so a prefix this deep decides identically to the full walk in
/// all but pathological blacklist patterns — while keeping the per-
/// heartbeat view cost independent of the total queued-job count.
const VIEW_JOB_SLACK: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Heartbeat {
        node: u16,
    },
    OverheadDone {
        job: JobId,
        task: TaskId,
        attempt: u32,
    },
    DiskWake {
        disk: u32,
    },
    NetworkDone {
        job: JobId,
        task: TaskId,
        attempt: u32,
    },
    CpuWake {
        node: u16,
    },
    EvalTick {
        job: JobId,
    },
    ReduceDone {
        job: JobId,
        reduce: u32,
    },
    NodeDown {
        node: u16,
    },
    NodeUp {
        node: u16,
    },
    Deadline {
        job: JobId,
    },
    RepairTick,
}

/// What the guard rails did to one validated `AddInput` batch (the audit
/// log records it alongside the directive).
#[derive(Debug, Clone, Copy, Default)]
struct AddOutcome {
    /// Genuinely new splits scheduled.
    granted: u32,
    /// The grab-limit clamp truncated the batch.
    clamped: bool,
    /// Duplicate splits dropped by the dedup guard.
    duplicates: u32,
}

/// Which modelled stage a running map attempt is in, holding the pending
/// event or resource flow so the attempt can be cancelled mid-stage when
/// its node dies or it loses a speculative race.
#[derive(Debug, Clone, Copy)]
enum AttemptStage {
    Overhead(EventId),
    Disk { disk: u32, flow: FlowId },
    Network(EventId),
    Cpu { flow: FlowId },
}

/// Where a map attempt's output comes from: freshly submitted data-plane
/// work, or a result replayed from the memo store. A memoized attempt
/// keeps its *full* simulated schedule (slot, overhead, disk, CPU) so warm
/// runs stay byte-identical to cold ones; only the host recomputation is
/// skipped.
enum MapWork {
    Computed(UnitHandle<MapTaskResult>),
    Cached(MapTaskResult),
}

/// One in-flight attempt of a map task. Ordinarily a task has at most one;
/// speculative execution adds a second racing attempt on another node.
struct MapAttempt {
    /// Attempt ordinal within its task (0-based start order).
    id: u32,
    node: NodeId,
    local: bool,
    speculative: bool,
    /// Dispatch instant (drives the laggard test for speculation).
    started: SimTime,
    stage: AttemptStage,
    /// Claim on the attempt's data-plane result: submitted (or replayed
    /// from the memo store) at dispatch, consumed at simulated completion.
    /// Dropped (not joined) on a failed or killed attempt — the next
    /// attempt submits afresh.
    result: Option<MapWork>,
    /// The replica this attempt intends to read, fixed at dispatch —
    /// only under DataNode-death semantics, where a death before the
    /// read starts is an observable failover (`None` otherwise).
    read_disk: Option<DiskId>,
}

struct TaskEntry {
    block: BlockId,
    /// When the split was first admitted (drives the wait-to-dispatch
    /// histogram, measured once per task).
    added_at: SimTime,
    /// When the task last entered the pending queue (admission or requeue;
    /// drives the per-scheduler queue-wait histogram, measured per
    /// non-speculative dispatch).
    enqueued_at: SimTime,
    /// The wait-to-dispatch sample was already taken for this task.
    first_dispatched: bool,
    /// In the job's pending queue, waiting for a slot.
    queued: bool,
    /// Completed (a non-done, non-queued task has ≥ 1 running attempt).
    done: bool,
    /// The shuffle already holds this task's output. Stays true across
    /// node-loss re-execution: map output is a pure function of the block,
    /// so the re-run's identical output is dropped instead of re-merged.
    merged: bool,
    /// Where the winning attempt ran — re-executed if that node dies
    /// while the job is still mapping (its stored map output is lost).
    completed_node: Option<NodeId>,
    attempts_started: u32,
    /// Counted (non-killed) failures, against the attempt budget.
    failures: u32,
    running: Vec<MapAttempt>,
    /// Dropped by a graceful deadline: never (re)queued again. The split's
    /// output, if any was merged, stays in the shuffle.
    abandoned: bool,
    /// Key under which this task sits in the job's `spec_candidates` index
    /// (`None` = not a speculation candidate right now).
    spec_key: Option<SimTime>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceState {
    Pending,
    Running { node: NodeId },
    Done,
}

/// One reduce task: its streamed-in shuffle partition (see
/// [`crate::shuffle`]) plus its in-flight data-plane work and output.
struct ReduceEntry {
    state: ReduceState,
    /// When the current attempt took its slot (reduce-latency histogram).
    started_at: SimTime,
    buffer: crate::shuffle::PartitionBuffer,
    /// Claim on the reduce's data-plane result: submitted when the task
    /// is assigned a slot, joined at its simulated completion.
    pending: Option<UnitHandle<ReduceTaskResult>>,
    /// The scheduled `ReduceDone` event, cancelled if the host dies.
    timer: Option<EventId>,
    /// Attempts consumed (counted failures; kills are free).
    attempts: u32,
    output: Vec<(Key, Record)>,
}

/// The armed cluster fault model: the plan plus independent deterministic
/// streams for map- and reduce-attempt fault draws.
struct ClusterFaultState {
    plan: ClusterFaultPlan,
    map_rng: DetRng,
    reduce_rng: DetRng,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Map,
    Reduce,
    Done,
}

struct JobEntry {
    id: JobId,
    spec: JobSpec,
    driver: Box<dyn GrowthDriver>,
    tasks: Vec<TaskEntry>,
    known_blocks: HashSet<BlockId>,
    pending: Vec<TaskId>,
    /// Per-node index of pending tasks whose split has a replica on that
    /// node (lazily cleaned — entries may reference dispatched tasks;
    /// stale entries are popped from the front as they surface).
    pending_by_node: Vec<VecDeque<TaskId>>,
    running: u32,
    completed: u32,
    end_of_input: bool,
    phase: JobPhase,
    submit_seq: u64,
    submit_time: SimTime,
    records_processed: u64,
    map_output_records: u64,
    shuffle_bytes: u64,
    local_tasks: u32,
    task_failures: u32,
    /// Per-reduce shuffle buffers, merged into incrementally as maps
    /// complete (bounded by `mapred.job.materialize.cap`).
    shuffle: ShuffleState,
    combiner_input_records: u64,
    combiner_output_records: u64,
    reduce_tasks: u32,
    reduces: Vec<ReduceEntry>,
    reduces_done: u32,
    /// Sum and count of completed-map attempt durations (ms), feeding the
    /// speculation laggard threshold.
    map_ms_sum: u64,
    map_ms_count: u32,
    /// Counted attempt failures per node, toward the blacklist threshold.
    node_failures: Vec<u32>,
    /// Nodes this job refuses to run on (Hadoop per-job blacklist).
    banned_nodes: Vec<bool>,
    /// Recoverable provider failures this job may still absorb
    /// (`dynamic.provider.retry.budget`).
    provider_retries_left: u32,
    /// Livelock watchdog threshold (`0` = disabled) and its running count
    /// of consecutive unproductive evaluations with nothing outstanding.
    max_idle_evaluations: u32,
    idle_evaluations: u32,
    /// Degrade to partial output on deadline expiry instead of failing.
    allow_partial: bool,
    /// A graceful deadline fired: input is closed and unfinished splits
    /// are abandoned rather than retried.
    deadline_hit: bool,
    /// Per-job latency histograms (see [`crate::obs`]); stays empty when
    /// the job opted out via `mapred.job.histogram.enabled=false`.
    hist: MetricsRegistry,
    /// Whether this job records into `hist` and the cluster registry.
    hist_enabled: bool,
    /// Last driver consultation (submission counts), feeding the
    /// provider-evaluation-interval histogram.
    last_eval_at: Option<SimTime>,
    /// First map completion — start of the streaming shuffle-merge window
    /// closed at `ShuffleReady`.
    first_merge_at: Option<SimTime>,
    /// The `running` value under which this job sits in the runtime's
    /// runnable indexes (`None` = not runnable: no pending map work).
    share_key: Option<u32>,
    /// This job's contribution to the runtime's `queued_map_tasks`
    /// counter (pending map tasks while in the map phase, else 0).
    counted_pending: u32,
    /// Speculation candidates — tasks with exactly one non-speculative
    /// attempt in flight — keyed by attempt start time (oldest first).
    spec_candidates: BTreeSet<(SimTime, u32)>,
    /// Stable identity of the job's computation (memo-sharing key):
    /// `mapred.job.signature` when set, else a hash of the full conf.
    signature: u64,
    /// Standing query (`dynamic.job.continuous`): instead of wedging when
    /// its provider has nothing to do, the job parks and `evolve` wakes it.
    continuous: bool,
    /// A parked standing query: no EvalTick in flight; `evolve` re-arms.
    parked: bool,
    /// Blocks that arrived via `evolve` since the last driver consultation
    /// (delivered once through `EvalContext::arrived`).
    arrived: Vec<BlockId>,
    /// Approximate-aggregation plane: the parsed `mapred.agg.*` plan.
    /// `Some` only for estimating jobs (`mapred.agg.error` set).
    agg_plan: Option<AggPlan>,
    /// Decoded per-split group observations, keyed by map task id so the
    /// estimator fold visits splits in a thread-count-independent order.
    agg_parts: BTreeMap<u32, Vec<SplitAggPart>>,
    /// When the previous error-bound probe ran (feeds `agg_probe_ms`).
    last_agg_probe_at: Option<SimTime>,
    /// Latest error-bound probe, handed to the growth driver through
    /// `EvalContext::agg`.
    agg_probe: Option<AggProbe>,
    result: Option<JobResult>,
}

impl JobEntry {
    fn progress(&self) -> JobProgress {
        JobProgress {
            job: self.id,
            splits_added: self.tasks.len() as u32,
            splits_completed: self.completed,
            splits_running: self.running,
            splits_pending: self.pending.len() as u32,
            records_processed: self.records_processed,
            map_output_records: self.map_output_records,
        }
    }
}

struct NodeState {
    free_slots: u32,
    free_reduce_slots: u32,
    /// False between a scheduled death and rejoin: no slots, no heartbeats,
    /// and every attempt the node hosted is killed. The node's *disks* keep
    /// serving (TaskTracker death, not DataNode death) — what dies with the
    /// tracker is its locally stored map output.
    alive: bool,
    /// Whether this node's self-perpetuating heartbeat chain is running.
    chain_live: bool,
    cpu: PsResource,
    cpu_flows: HashMap<FlowId, (JobId, TaskId, u32)>,
    cpu_wake: Option<EventId>,
}

struct DiskState {
    res: PsResource,
    flows: HashMap<FlowId, (JobId, TaskId, u32)>,
    wake: Option<EventId>,
}

/// The simulated MapReduce cluster: submit jobs, run the clock, collect
/// results and metrics.
pub struct MrRuntime {
    cfg: ClusterConfig,
    cost: CostModel,
    namespace: Namespace,
    scheduler: Box<dyn TaskScheduler>,
    sim: Sim<Event>,
    jobs: Vec<JobEntry>,
    nodes: Vec<NodeState>,
    disks: Vec<DiskState>,
    completed: VecDeque<JobId>,
    /// Runnable jobs (map phase, pending work) by `(submit_seq, index)` —
    /// the FIFO dispatch order. Maintained by `refresh_sched_index`.
    runnable_by_seq: BTreeSet<(u64, u32)>,
    /// The same jobs by `(running, submit_seq, index)` — the fair-share
    /// deficit order the Fair scheduler dispatches in.
    runnable_by_share: BTreeSet<(u32, u64, u32)>,
    /// Jobs worth offering speculative backups: map phase, no pending
    /// work, at least one speculation candidate.
    spec_jobs: BTreeSet<u32>,
    /// Cluster-wide pending map tasks, kept O(1) for `cluster_status`.
    queued_map_tasks: u64,
    /// Reduce tasks waiting for a reduce slot, in creation order.
    pending_reduces: VecDeque<(JobId, u32)>,
    metrics: ClusterMetrics,
    /// Resource totals snapshotted at the last `reset_metrics`, subtracted
    /// from cumulative counters so metrics windows restart cleanly.
    metrics_base: (f64, f64),
    /// Number of per-node heartbeat chains currently self-perpetuating.
    heartbeats_live: u32,
    active_jobs: u32,
    faults: Option<(FaultPlan, DetRng)>,
    cluster_faults: Option<ClusterFaultState>,
    trace: Option<Vec<TraceEvent>>,
    /// Structured trace export (see [`crate::obs`]): every recorded event
    /// is forwarded here in addition to the legacy `trace` buffer.
    sink: Option<Box<dyn TraceSink>>,
    /// Cluster-wide latency histograms, merged across all opted-in jobs.
    obs_registry: MetricsRegistry,
    /// Provider-decision audit log, recording every driver consultation
    /// (`None` until `enable_audit`).
    audit: Option<Vec<AuditRecord>>,
    /// Data-plane worker pool (see [`crate::parallel`]); serial at
    /// `Parallelism::SERIAL`. Never touches simulated time.
    executor: ParallelExecutor,
    /// The memoization plane (`None` until `enable_memoization`): cached
    /// per-split map output keyed by `(job signature, block, version)`.
    memo: Option<MemoStore>,
    /// Standing queries currently parked (no EvalTick in flight). When
    /// every active job is parked, heartbeat chains expire so the event
    /// queue can drain; `evolve` restarts them.
    parked_jobs: u32,
    /// DataNode-death semantics armed (`enable_data_loss`): a node outage
    /// strips its replicas from the namespace instead of leaving its
    /// disks serving. Off by default — the PR-3 fault model is
    /// TaskTracker death, where only stored map output dies.
    data_loss: bool,
    /// Re-replication daemon period (`enable_re_replication`); `None`
    /// leaves lost replicas lost.
    repair_interval: Option<SimDuration>,
    /// A `RepairTick` is in flight. Ticks are armed only while
    /// under-replicated blocks exist, so `run_until_idle` can drain.
    repair_scheduled: bool,
    /// Blocks below their placement-time replication target that still
    /// have a live replica to copy from.
    under_replicated: BTreeSet<BlockId>,
}

impl MrRuntime {
    /// Build a runtime over a populated namespace.
    pub fn new(
        cfg: ClusterConfig,
        cost: CostModel,
        namespace: Namespace,
        scheduler: Box<dyn TaskScheduler>,
    ) -> Self {
        let topo = cfg.topology;
        assert_eq!(
            topo,
            *namespace.topology(),
            "namespace must be laid out on the runtime's topology"
        );
        let nodes = (0..topo.num_nodes())
            .map(|_| NodeState {
                free_slots: cfg.map_slots_per_node,
                free_reduce_slots: cfg.reduce_slots_per_node,
                alive: true,
                chain_live: false,
                cpu: PsResource::new(topo.cores_per_node() as f64 * 1e6),
                cpu_flows: HashMap::new(),
                cpu_wake: None,
            })
            .collect();
        let disks = (0..topo.num_disks())
            .map(|_| DiskState {
                res: PsResource::new(cost.disk_bw_bytes_per_sec),
                flows: HashMap::new(),
                wake: None,
            })
            .collect();
        let metrics = ClusterMetrics::new(
            SimTime::ZERO,
            topo.num_cores(),
            topo.num_disks(),
            cfg.total_map_slots(),
            METRICS_INTERVAL,
        );
        MrRuntime {
            cfg,
            cost,
            namespace,
            scheduler,
            sim: Sim::new(),
            jobs: Vec::new(),
            nodes,
            disks,
            completed: VecDeque::new(),
            runnable_by_seq: BTreeSet::new(),
            runnable_by_share: BTreeSet::new(),
            spec_jobs: BTreeSet::new(),
            queued_map_tasks: 0,
            pending_reduces: VecDeque::new(),
            metrics,
            metrics_base: (0.0, 0.0),
            heartbeats_live: 0,
            active_jobs: 0,
            faults: None,
            cluster_faults: None,
            trace: None,
            sink: None,
            obs_registry: MetricsRegistry::new(),
            audit: None,
            executor: ParallelExecutor::new(cfg.parallelism),
            memo: None,
            parked_jobs: 0,
            data_loss: false,
            repair_interval: None,
            repair_scheduled: false,
            under_replicated: BTreeSet::new(),
        }
    }

    /// Arm DataNode-death semantics: a node outage permanently strips the
    /// dead node's replicas from the namespace (recording a
    /// [`TraceKind::ReplicaLost`] per block), reads fail over to surviving
    /// replicas, and a block that loses its last replica makes dependent
    /// jobs fail with [`JobError::InputLost`] — or degrade to a partial
    /// result under `mapred.job.allow.partial`. A rejoining node comes
    /// back *empty*; only re-replication restores its data. Off by
    /// default: the stock fault model is TaskTracker death, where disks
    /// keep serving (see DESIGN.md §14).
    pub fn enable_data_loss(&mut self) {
        assert!(
            self.jobs.is_empty(),
            "arm data-loss semantics before submitting jobs"
        );
        self.data_loss = true;
    }

    /// Arm the re-replication daemon (implies [`MrRuntime::enable_data_loss`]):
    /// every `interval` of simulated time while under-replicated blocks
    /// exist, one pass restores at most one replica per block towards its
    /// placement-time target, preferring racks the block does not cover
    /// yet. A zero interval is rejected (the tick would livelock the
    /// event loop).
    pub fn enable_re_replication(&mut self, interval: SimDuration) -> Result<(), FaultConfigError> {
        if interval == SimDuration::ZERO {
            return Err(FaultConfigError::ZeroRepairInterval);
        }
        self.enable_data_loss();
        self.repair_interval = Some(interval);
        Ok(())
    }

    /// Turn on the memoization plane: completed map tasks cache their
    /// output keyed by `(job signature, block, version)`, and later jobs
    /// with the same signature replay cached splits instead of recomputing
    /// them (the attempt keeps its full simulated schedule, so results and
    /// traces stay byte-identical to a cold run). See DESIGN.md §13.
    pub fn enable_memoization(&mut self) {
        if self.memo.is_none() {
            self.memo = Some(MemoStore::new());
        }
    }

    /// The memo store, when memoization is enabled (read access for tests
    /// and tooling).
    pub fn memo_store(&self) -> Option<&MemoStore> {
        self.memo.as_ref()
    }

    /// Start recording a [`TraceEvent`] timeline (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drain the recorded trace (empty if tracing was never enabled);
    /// tracing stays enabled with a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.take() {
            Some(events) => {
                self.trace = Some(Vec::new());
                events
            }
            None => Vec::new(),
        }
    }

    /// Install a structured [`TraceSink`]: every trace event is forwarded
    /// to it (in addition to the legacy buffer, if tracing is on),
    /// replacing any previously installed sink.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.sink = Some(sink);
    }

    /// The installed trace sink, for draining mid-run.
    pub fn trace_sink_mut(&mut self) -> Option<&mut (dyn TraceSink + 'static)> {
        self.sink.as_deref_mut()
    }

    /// Remove and return the installed trace sink.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.sink.take()
    }

    /// Start recording the provider-decision audit log (see
    /// [`crate::obs::AuditRecord`]). Only consultations after this call
    /// are audited, so enable it before submitting the jobs of interest.
    pub fn enable_audit(&mut self) {
        if self.audit.is_none() {
            self.audit = Some(Vec::new());
        }
    }

    /// The audit log so far (empty if auditing was never enabled).
    pub fn audit_log(&self) -> &[AuditRecord] {
        self.audit.as_deref().unwrap_or(&[])
    }

    /// Drain the audit log; auditing stays enabled with a fresh buffer.
    pub fn take_audit(&mut self) -> Vec<AuditRecord> {
        match self.audit.take() {
            Some(records) => {
                self.audit = Some(Vec::new());
                records
            }
            None => Vec::new(),
        }
    }

    /// The cluster-wide latency histograms, merged across every job that
    /// did not opt out (always collected — simulated-time arithmetic only,
    /// so the cost is a few integer increments per task).
    pub fn histograms(&self) -> &MetricsRegistry {
        &self.obs_registry
    }

    /// Record a trace event on behalf of an embedding layer (a query
    /// service front end, a workload harness): the event lands in the
    /// runtime's trace buffer and structured sink exactly like the
    /// runtime's own, so admission decisions interleave with task events
    /// in one timeline.
    pub fn record_event(&mut self, kind: TraceKind) {
        self.record(kind);
    }

    fn record(&mut self, kind: TraceKind) {
        let time = self.sim.now();
        if let Some(sink) = &mut self.sink {
            sink.record(&TraceEvent {
                time,
                kind: kind.clone(),
            });
        }
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent { time, kind });
        }
    }

    /// Record one latency sample into the cluster-wide registry and the
    /// job's own, honouring the job's histogram opt-out.
    fn obs_record(&mut self, id: JobId, f: impl Fn(&mut MetricsRegistry)) {
        if !self.job(id).hist_enabled {
            return;
        }
        f(&mut self.obs_registry);
        f(&mut self.job_mut(id).hist);
    }

    fn audit_push(&mut self, record: AuditRecord) {
        if let Some(audit) = &mut self.audit {
            audit.push(record);
        }
    }

    /// Disable fault injection (test helper).
    #[doc(hidden)]
    pub fn faults_off_for_test(&mut self) {
        self.faults = None;
    }

    /// Enable deterministic per-map-attempt fault injection. Rejects
    /// out-of-range probabilities and a zero attempt budget with a typed
    /// error (the old `assert!`-based validation).
    pub fn inject_faults(&mut self, plan: FaultPlan) -> Result<(), FaultConfigError> {
        plan.validate()?;
        let rng = DetRng::seed_from(plan.seed);
        self.faults = Some((plan, rng));
        Ok(())
    }

    /// Arm the cluster-level fault model (node outages, stragglers, map and
    /// reduce attempt faults, speculation, blacklisting — see
    /// [`crate::faults`]). Must be called before any job is submitted.
    pub fn inject_cluster_faults(
        &mut self,
        plan: ClusterFaultPlan,
    ) -> Result<(), FaultConfigError> {
        plan.validate(self.nodes.len())?;
        assert!(
            self.jobs.is_empty(),
            "inject cluster faults before submitting jobs"
        );
        // Stragglers: a slow node's CPU drains map work proportionally
        // slower (CPU dominates simulated map time, so speed ≈ slowdown).
        let cores_us = self.cfg.topology.cores_per_node() as f64 * 1e6;
        for (i, &speed) in plan.node_speed.iter().enumerate() {
            self.nodes[i].cpu = PsResource::new(cores_us * speed);
        }
        for outage in &plan.outages {
            self.sim.schedule_at(
                outage.down_at,
                Event::NodeDown {
                    node: outage.node.0,
                },
            );
            if let Some(up) = outage.up_at {
                self.sim.schedule_at(
                    up,
                    Event::NodeUp {
                        node: outage.node.0,
                    },
                );
            }
        }
        let root = DetRng::seed_from(plan.seed);
        let map_rng = root.fork_named("map-faults");
        let reduce_rng = root.fork_named("reduce-faults");
        self.cluster_faults = Some(ClusterFaultState {
            plan,
            map_rng,
            reduce_rng,
        });
        Ok(())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The namespace (read access for callers building job inputs).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// The evolve API: mutate the namespace in place — append blocks,
    /// rewrite blocks ([`Namespace::append_blocks`] /
    /// [`Namespace::mutate_blocks`], typically via `Dataset::append` /
    /// `Dataset::mutate`) — at the current simulated time.
    ///
    /// If new blocks appeared, the runtime records a job-less
    /// [`TraceKind::InputArrived`] event, hands the new block ids to every
    /// live standing query (`dynamic.job.continuous`) through
    /// [`EvalContext::arrived`], and wakes parked ones with an immediate
    /// re-evaluation. In-place mutations need no wakeup: they bump block
    /// versions, and the memo plane's next probe sees the staleness.
    pub fn evolve<R>(&mut self, f: impl FnOnce(&mut Namespace) -> R) -> R {
        let before = self.namespace.num_blocks();
        let out = f(&mut self.namespace);
        let after = self.namespace.num_blocks();
        if after > before {
            let arrived: Vec<BlockId> = (before as u32..after as u32).map(BlockId).collect();
            self.record(TraceKind::InputArrived {
                splits: arrived.len() as u32,
            });
            self.metrics.memo_mut().input_arrivals += 1;
            let ids: Vec<JobId> = self
                .jobs
                .iter()
                .filter(|j| j.continuous && j.phase == JobPhase::Map && !j.end_of_input)
                .map(|j| j.id)
                .collect();
            let mut woke = false;
            for id in ids {
                self.job_mut(id).arrived.extend(arrived.iter().copied());
                if self.job(id).parked {
                    self.unpark(id);
                    self.sim
                        .schedule_after(SimDuration::ZERO, Event::EvalTick { job: id });
                    woke = true;
                }
            }
            if woke {
                // Chains may have expired while every active job was
                // parked; the woken query's AddInputs need them back.
                self.ensure_heartbeats();
            }
        }
        out
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Point-in-time cluster load snapshot (what Input Providers receive).
    /// Dead nodes drop out of both totals: Input Providers see the lost
    /// capacity, exactly as a JobTracker stops counting an expired tracker.
    pub fn cluster_status(&self) -> ClusterStatus {
        let alive = self.nodes.iter().filter(|n| n.alive).count() as u32;
        let total = alive * self.cfg.map_slots_per_node;
        let free: u32 = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.free_slots)
            .sum();
        // O(1): maintained by `refresh_sched_index` at every mutation of a
        // job's pending queue or phase (Input Providers call this on every
        // evaluation, so a per-job walk would be quadratic at scale).
        let queued = self.queued_map_tasks.min(u32::MAX as u64) as u32;
        ClusterStatus {
            total_map_slots: total,
            occupied_map_slots: total.saturating_sub(free),
            running_jobs: self.active_jobs,
            queued_map_tasks: queued,
        }
    }

    /// Submit a job with its growth driver. Takes effect immediately (at
    /// the current simulated time).
    ///
    /// # Panics
    /// Panics on a malformed configuration — see [`MrRuntime::try_submit`]
    /// for the checked variant. A misbehaving *driver* never panics the
    /// runtime: provider faults are sandboxed and fail only their job.
    pub fn submit(&mut self, spec: JobSpec, driver: Box<dyn GrowthDriver>) -> JobId {
        match self.try_submit(spec, driver) {
            Ok(id) => id,
            Err(e) => panic!("invalid job configuration: {e}"),
        }
    }

    /// Submit a job, rejecting a malformed configuration (unparseable
    /// numeric keys, zero deadline) with a typed error instead of
    /// panicking. The driver's `initial_input` runs under the provider
    /// sandbox: a panic or invalid directive there consumes the job's
    /// retry budget or fails the job, but always yields a valid `JobId`.
    pub fn try_submit(
        &mut self,
        spec: JobSpec,
        driver: Box<dyn GrowthDriver>,
    ) -> Result<JobId, JobConfigError> {
        let id = JobId(self.jobs.len() as u32);
        let materialize_cap = spec
            .conf
            .get_u64_or(MATERIALIZE_CAP_KEY, u64::MAX)
            .map_err(JobConfigError::BadConf)?;
        let reduce_tasks = spec
            .conf
            .get_u64_or(keys::NUM_REDUCE_TASKS, 1)
            .map_err(JobConfigError::BadConf)?
            .max(1) as u32;
        let provider_retries_left = spec
            .conf
            .get_u64_or(keys::PROVIDER_RETRY_BUDGET, 0)
            .map_err(JobConfigError::BadConf)? as u32;
        let max_idle_evaluations = spec
            .conf
            .get_u64_or(
                keys::MAX_IDLE_EVALUATIONS,
                DEFAULT_MAX_IDLE_EVALUATIONS as u64,
            )
            .map_err(JobConfigError::BadConf)? as u32;
        // `u64::MAX` is the no-deadline sentinel; an explicit 0 would
        // expire at submission and is rejected, mirroring `try_build`.
        let deadline_ms = spec
            .conf
            .get_u64_or(keys::JOB_DEADLINE_MS, u64::MAX)
            .map_err(JobConfigError::BadConf)?;
        if deadline_ms == 0 {
            return Err(JobConfigError::ZeroDeadline);
        }
        // Replication plane: `dfs.replication` is informational at the
        // job level (placement happened at dataset build), but a
        // malformed or zero value is rejected here, not discovered
        // mid-chaos.
        if let Some(v) = spec.conf.get(keys::DFS_REPLICATION) {
            if !matches!(v.parse::<u8>(), Ok(r) if r > 0) {
                return Err(JobConfigError::BadConf(ConfError {
                    key: keys::DFS_REPLICATION.to_string(),
                    value: v.to_string(),
                    wanted: "replication factor (1..=255)",
                }));
            }
        }
        let allow_partial = spec.conf.get_bool(keys::ALLOW_PARTIAL);
        // Observability knobs: the trace-sink request is honoured before
        // the job exists (a bad value must reject the submission cleanly),
        // and histograms default to enabled.
        match spec.conf.get(keys::TRACE_SINK) {
            None => {}
            Some("memory") => self.enable_tracing(),
            Some("jsonl") if self.sink.is_none() => {
                self.sink = Some(Box::new(JsonlSink::new()));
            }
            Some("jsonl") => {} // a sink is already installed; keep it
            Some(other) => {
                return Err(JobConfigError::BadConf(ConfError {
                    key: keys::TRACE_SINK.to_string(),
                    value: other.to_string(),
                    wanted: "trace sink (\"memory\" or \"jsonl\")",
                }))
            }
        }
        let hist_enabled = spec
            .conf
            .get(keys::HISTOGRAM_ENABLED)
            .map(|v| v.eq_ignore_ascii_case("true"))
            .unwrap_or(true);
        // Memoization plane: a semantic signature when the submitter set
        // one, else a hash of the full conf (so distinct queries never
        // share cached map output by accident).
        let signature = match spec.conf.get(keys::JOB_SIGNATURE) {
            Some(v) => v.parse().map_err(|_| {
                JobConfigError::BadConf(ConfError {
                    key: keys::JOB_SIGNATURE.to_string(),
                    value: v.to_string(),
                    wanted: "u64",
                })
            })?,
            None => signature_of_conf(spec.conf.iter(), reduce_tasks),
        };
        let continuous = spec.conf.get_bool(keys::CONTINUOUS);
        // Approximate-aggregation plane: a malformed `mapred.agg.*` set is
        // rejected at submission, mirroring `try_build`.
        let agg_plan = agg_plan_of(&spec.conf).map_err(JobConfigError::BadConf)?;
        // Snapshot before this job is registered, so the provider's first
        // look at the cluster excludes its own (not yet running) job.
        let status = self.cluster_status();
        let interval = driver.evaluation_interval();
        let num_nodes = self.cfg.topology.num_nodes() as usize;
        let entry = JobEntry {
            id,
            spec,
            driver,
            tasks: Vec::new(),
            known_blocks: HashSet::new(),
            pending: Vec::new(),
            pending_by_node: vec![VecDeque::new(); num_nodes],
            running: 0,
            completed: 0,
            end_of_input: false,
            phase: JobPhase::Map,
            submit_seq: id.0 as u64,
            submit_time: self.sim.now(),
            records_processed: 0,
            map_output_records: 0,
            shuffle_bytes: 0,
            local_tasks: 0,
            task_failures: 0,
            shuffle: ShuffleState::new(reduce_tasks, materialize_cap),
            combiner_input_records: 0,
            combiner_output_records: 0,
            reduce_tasks,
            reduces: Vec::new(),
            reduces_done: 0,
            map_ms_sum: 0,
            map_ms_count: 0,
            node_failures: vec![0; num_nodes],
            banned_nodes: vec![false; num_nodes],
            provider_retries_left,
            max_idle_evaluations,
            idle_evaluations: 0,
            allow_partial,
            deadline_hit: false,
            hist: MetricsRegistry::new(),
            hist_enabled,
            last_eval_at: None,
            first_merge_at: None,
            share_key: None,
            counted_pending: 0,
            spec_candidates: BTreeSet::new(),
            signature,
            continuous,
            parked: false,
            arrived: Vec::new(),
            agg_plan,
            agg_parts: BTreeMap::new(),
            last_agg_probe_at: None,
            agg_probe: None,
            result: None,
        };
        self.jobs.push(entry);
        self.active_jobs += 1;
        self.record(TraceKind::JobSubmitted { job: id });
        if deadline_ms != u64::MAX {
            self.sim.schedule_after(
                SimDuration::from_millis(deadline_ms),
                Event::Deadline { job: id },
            );
        }
        // Sandboxed initial input: a panicking provider costs its job (or
        // a retry), never the runtime.
        let now = self.sim.now();
        let progress = self.job(id).progress();
        let outcome = {
            let driver = &mut self.job_mut(id).driver;
            catch_unwind(AssertUnwindSafe(|| driver.try_initial_input(&status)))
                .unwrap_or_else(|p| Err(ProviderError::from_panic(ProviderStage::InitialInput, p)))
        };
        self.job_mut(id).last_eval_at = Some(now);
        let limit = self.job(id).driver.grab_limit(&status);
        let (directive, added, retried) = match outcome {
            Ok(initial) => {
                let requested = initial.len() as u32;
                match self.validate_and_add_input(id, initial, limit) {
                    Ok(added) => (AuditDirective::AddInput { requested }, added, false),
                    Err(e) => {
                        let retried = self.job(id).provider_retries_left > 0;
                        self.provider_failed(id, e);
                        (
                            AuditDirective::Fault { fatal: !retried },
                            AddOutcome::default(),
                            retried,
                        )
                    }
                }
            }
            Err(e) => {
                let retried = self.job(id).provider_retries_left > 0;
                self.provider_failed(id, e);
                (
                    AuditDirective::Fault { fatal: !retried },
                    AddOutcome::default(),
                    retried,
                )
            }
        };
        self.audit_push(AuditRecord {
            time: now,
            job: id,
            stage: ProviderStage::InitialInput,
            progress,
            cluster: status,
            grab_limit: limit,
            directive,
            granted: added.granted,
            clamped: added.clamped,
            duplicates_dropped: added.duplicates,
            retried,
        });
        // First evaluation happens immediately: static drivers end their
        // input here; dynamic providers typically wait for statistics. The
        // initial tasks launch at the nodes' next heartbeats, as in Hadoop.
        if self.job(id).phase != JobPhase::Done {
            self.evaluate_job(id);
        }
        let job = self.job(id);
        if job.phase != JobPhase::Done && !job.end_of_input {
            self.sim
                .schedule_after(interval, Event::EvalTick { job: id });
        }
        self.ensure_heartbeats();
        Ok(id)
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.sim.pop() else {
            return false;
        };
        self.handle(ev);
        true
    }

    /// Run until no events remain (all submitted jobs completed).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Run until the clock passes `limit` or the queue drains.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some(t) = self.sim.peek_time() {
            if t > limit {
                break;
            }
            self.step();
        }
        self.sim.advance_to(limit);
    }

    /// Run until some job completes; returns it, or `None` if the queue
    /// drained first.
    pub fn run_until_any_completion(&mut self) -> Option<JobId> {
        loop {
            if let Some(done) = self.completed.pop_front() {
                return Some(done);
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Drain the completed-jobs queue.
    pub fn take_completed(&mut self) -> Vec<JobId> {
        self.completed.drain(..).collect()
    }

    /// The result of a completed job.
    ///
    /// # Panics
    /// Panics if the job has not completed.
    pub fn job_result(&self, id: JobId) -> &JobResult {
        self.job(id).result.as_ref().expect("job not yet complete")
    }

    /// A submitted job's configuration (readable for the job's whole
    /// lifetime, including after completion).
    pub fn job_conf(&self, id: JobId) -> &crate::conf::JobConf {
        &self.job(id).spec.conf
    }

    /// Whether a job has completed.
    pub fn is_complete(&self, id: JobId) -> bool {
        self.job(id).phase == JobPhase::Done
    }

    /// Release a completed job's bulky state (result output records, task
    /// tables, reduce buffers), keeping only the scalar accounting in its
    /// [`JobResult`]. Long-running closed-loop drivers call this after
    /// reading a result so memory stays bounded by *active* jobs.
    ///
    /// # Panics
    /// Panics if the job has not completed.
    pub fn release_job_result(&mut self, id: JobId) {
        let job = self.job_mut(id);
        assert!(job.phase == JobPhase::Done, "cannot release a live job");
        if let Some(result) = &mut job.result {
            result.output = Vec::new();
        }
        job.tasks = Vec::new();
        job.pending_by_node = Vec::new();
        job.known_blocks = HashSet::new();
        job.reduces = Vec::new();
        job.shuffle = ShuffleState::default();
        // The task table is gone; the speculation index over it goes too
        // (a Done job is already absent from every runnable index).
        job.spec_candidates = BTreeSet::new();
    }

    /// Live progress for a job (any phase).
    pub fn job_progress(&self, id: JobId) -> JobProgress {
        self.job(id).progress()
    }

    /// The metrics collector.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Restart metrics collection at the current instant (used to discard
    /// a workload's warm-up phase). Slot occupancy restarts at the current
    /// occupancy level; locality counters restart at zero.
    pub fn reset_metrics(&mut self) {
        let now = self.sim.now();
        let occupied: f64 = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| (self.cfg.map_slots_per_node - n.free_slots) as f64)
            .sum();
        // Note the resource cumulative totals restart too: we snapshot the
        // current totals and subtract them at observe time.
        let mut fresh = ClusterMetrics::new(
            now,
            self.cfg.topology.num_cores(),
            self.cfg.topology.num_disks(),
            self.cfg.total_map_slots(),
            METRICS_INTERVAL,
        );
        fresh.slots_delta(now, occupied);
        self.metrics_base = self.resource_totals();
        self.metrics = fresh;
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn job(&self, id: JobId) -> &JobEntry {
        &self.jobs[id.0 as usize]
    }

    fn job_mut(&mut self, id: JobId) -> &mut JobEntry {
        &mut self.jobs[id.0 as usize]
    }

    /// Leave the parked state (no-op when not parked). Every transition
    /// out of parked — evolve wakeup, deadline, failure — goes through
    /// here so the parked-jobs counter stays exact.
    fn unpark(&mut self, id: JobId) {
        let job = &mut self.jobs[id.0 as usize];
        if job.parked {
            job.parked = false;
            self.parked_jobs -= 1;
        }
    }

    /// Re-key one job in the runnable indexes, the queued-task counter,
    /// and the speculation job set after any mutation of its pending
    /// queue, running count, or phase. O(log jobs); idempotent.
    fn refresh_sched_index(&mut self, id: JobId) {
        let idx = id.0;
        let (seq, new_key, new_counted, spec_live) = {
            let job = &self.jobs[idx as usize];
            let runnable = job.phase == JobPhase::Map && !job.pending.is_empty();
            let counted = if job.phase == JobPhase::Map {
                job.pending.len() as u32
            } else {
                0
            };
            let spec_live = job.phase == JobPhase::Map
                && job.pending.is_empty()
                && !job.spec_candidates.is_empty();
            (
                job.submit_seq,
                runnable.then_some(job.running),
                counted,
                spec_live,
            )
        };
        let old_key = self.jobs[idx as usize].share_key;
        match (old_key, new_key) {
            (None, None) => {}
            (None, Some(r)) => {
                self.runnable_by_seq.insert((seq, idx));
                self.runnable_by_share.insert((r, seq, idx));
            }
            (Some(r), None) => {
                self.runnable_by_seq.remove(&(seq, idx));
                self.runnable_by_share.remove(&(r, seq, idx));
            }
            (Some(r0), Some(r1)) if r0 != r1 => {
                self.runnable_by_share.remove(&(r0, seq, idx));
                self.runnable_by_share.insert((r1, seq, idx));
            }
            _ => {}
        }
        let job = &mut self.jobs[idx as usize];
        job.share_key = new_key;
        self.queued_map_tasks =
            self.queued_map_tasks - job.counted_pending as u64 + new_counted as u64;
        job.counted_pending = new_counted;
        if spec_live {
            self.spec_jobs.insert(idx);
        } else {
            self.spec_jobs.remove(&idx);
        }
    }

    /// Re-key one task in its job's speculation-candidate index after any
    /// change to its attempt list or `done` flag. A candidate is a task
    /// with exactly one non-speculative attempt in flight, keyed by that
    /// attempt's start time.
    fn refresh_spec_candidate(&mut self, id: JobId, task: TaskId) {
        let spec_live = {
            let job = &mut self.jobs[id.0 as usize];
            let t = &mut job.tasks[task.0 as usize];
            let new_key = (!t.done && t.running.len() == 1 && !t.running[0].speculative)
                .then(|| t.running[0].started);
            if t.spec_key != new_key {
                if let Some(k) = t.spec_key {
                    job.spec_candidates.remove(&(k, task.0));
                }
                if let Some(k) = new_key {
                    job.spec_candidates.insert((k, task.0));
                }
                t.spec_key = new_key;
            }
            job.phase == JobPhase::Map && job.pending.is_empty() && !job.spec_candidates.is_empty()
        };
        if spec_live {
            self.spec_jobs.insert(id.0);
        } else {
            self.spec_jobs.remove(&id.0);
        }
    }

    /// Ground-truth check of every incremental index against a recompute.
    /// Debug builds only, and skipped for large fleets (it is O(total
    /// tasks) — exactly the walk the indexes exist to avoid).
    #[cfg(debug_assertions)]
    fn debug_check_indexes(&self) {
        let mut by_seq = BTreeSet::new();
        let mut by_share = BTreeSet::new();
        let mut spec_jobs = BTreeSet::new();
        let mut queued = 0u64;
        for (i, job) in self.jobs.iter().enumerate() {
            let i = i as u32;
            if job.phase == JobPhase::Map {
                queued += job.pending.len() as u64;
            }
            if job.phase == JobPhase::Map && !job.pending.is_empty() {
                by_seq.insert((job.submit_seq, i));
                by_share.insert((job.running, job.submit_seq, i));
            }
            let mut cands = BTreeSet::new();
            for (t, entry) in job.tasks.iter().enumerate() {
                if !entry.done && entry.running.len() == 1 && !entry.running[0].speculative {
                    cands.insert((entry.running[0].started, t as u32));
                }
            }
            assert_eq!(cands, job.spec_candidates, "job {i} spec candidates");
            if job.phase == JobPhase::Map && job.pending.is_empty() && !cands.is_empty() {
                spec_jobs.insert(i);
            }
        }
        assert_eq!(by_seq, self.runnable_by_seq, "runnable_by_seq diverged");
        assert_eq!(
            by_share, self.runnable_by_share,
            "runnable_by_share diverged"
        );
        assert_eq!(spec_jobs, self.spec_jobs, "spec_jobs diverged");
        assert_eq!(queued, self.queued_map_tasks, "queued counter diverged");
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Heartbeat { node } => self.on_heartbeat(node),
            Event::OverheadDone { job, task, attempt } => self.on_overhead_done(job, task, attempt),
            Event::DiskWake { disk } => self.on_disk_wake(disk),
            Event::NetworkDone { job, task, attempt } => self.start_cpu(job, task, attempt),
            Event::CpuWake { node } => self.on_cpu_wake(node),
            Event::EvalTick { job } => self.on_eval_tick(job),
            Event::ReduceDone { job, reduce } => self.on_reduce_done(job, reduce),
            Event::NodeDown { node } => self.on_node_down(node),
            Event::NodeUp { node } => self.on_node_up(node),
            Event::Deadline { job } => self.on_deadline(job),
            Event::RepairTick => self.on_repair_tick(),
        }
    }

    /// The job's simulated-time deadline expired. Without
    /// `mapred.job.allow.partial` the job fails; with it, input is
    /// closed, unstarted splits are abandoned, and the job completes with
    /// whatever its finished maps produced (paper semantics: the sample
    /// is still correct, just smaller).
    fn on_deadline(&mut self, id: JobId) {
        if self.job(id).phase == JobPhase::Done {
            return;
        }
        // A deadline is the one event that can reach a parked standing
        // query; leaving the parked state here keeps the counter exact.
        self.unpark(id);
        let graceful = self.job(id).allow_partial;
        self.metrics.guardrails_mut().deadlines_exceeded += 1;
        self.record(TraceKind::DeadlineExceeded { job: id, graceful });
        if !graceful {
            self.fail_job(id, JobError::DeadlineExceeded);
            return;
        }
        let job = self.job_mut(id);
        job.deadline_hit = true;
        if job.phase == JobPhase::Reduce {
            // The reduce inputs are final; let the reduces commit.
            return;
        }
        job.end_of_input = true;
        let pending = std::mem::take(&mut job.pending);
        for t in &pending {
            let e = &mut job.tasks[t.0 as usize];
            e.queued = false;
            e.abandoned = true;
        }
        for list in &mut job.pending_by_node {
            list.clear();
        }
        self.refresh_sched_index(id);
        // Running attempts are left to finish — their output is already
        // paid for; the job reduces once the last one lands.
        self.maybe_begin_reduce(id);
        // A formerly parked job may have let the heartbeat chains expire;
        // its queued reduces need them back.
        self.ensure_heartbeats();
    }

    /// Start a self-perpetuating heartbeat chain on every live node that
    /// lacks one (staggered, as real TaskTrackers are). A node's chain
    /// expires when no jobs remain active or the node dies; rejoining
    /// restarts only that node's chain.
    fn ensure_heartbeats(&mut self) {
        let n = self.nodes.len() as u64;
        for node in 0..self.nodes.len() as u16 {
            let state = &self.nodes[node as usize];
            if !state.alive || state.chain_live {
                continue;
            }
            self.nodes[node as usize].chain_live = true;
            self.heartbeats_live += 1;
            let stagger = self.cost.heartbeat_ms * (node as u64 + 1) / n;
            self.sim
                .schedule_after(SimDuration::from_millis(stagger), Event::Heartbeat { node });
        }
    }

    fn resource_totals(&mut self) -> (f64, f64) {
        let now = self.sim.now();
        let cpu: f64 = self
            .nodes
            .iter_mut()
            .map(|n| n.cpu.drained_total(now))
            .sum();
        let disk: f64 = self
            .disks
            .iter_mut()
            .map(|d| d.res.drained_total(now))
            .sum();
        (cpu, disk)
    }

    fn observe_metrics(&mut self) {
        let now = self.sim.now();
        let (cpu, disk) = self.resource_totals();
        let (cpu0, disk0) = self.metrics_base;
        self.metrics.observe(now, cpu - cpu0, disk - disk0);
    }

    fn on_heartbeat(&mut self, node: u16) {
        // Chains expire when nothing needs them: no active jobs, or every
        // active job is a parked standing query (`evolve` restarts them).
        if self.active_jobs == self.parked_jobs || !self.nodes[node as usize].alive {
            self.nodes[node as usize].chain_live = false;
            self.heartbeats_live -= 1;
            return;
        }
        // Exactly one live node samples the metrics window per beat.
        if self.nodes.iter().position(|n| n.alive) == Some(node as usize) {
            self.observe_metrics();
        }
        self.schedule_node(node);
        self.assign_reduce(node);
        self.maybe_speculate(node);
        self.sim.schedule_after(
            SimDuration::from_millis(self.cost.heartbeat_ms),
            Event::Heartbeat { node },
        );
    }

    /// Vet one `AddInput` batch before it becomes tasks: a block outside
    /// the namespace is a typed provider error, an over-long batch is
    /// truncated to the driver's grab limit, and splits the job already
    /// claimed (within or across directives) are dropped. Returns what the
    /// guard rails did to the batch (feeding the audit log).
    fn validate_and_add_input(
        &mut self,
        id: JobId,
        mut blocks: Vec<BlockId>,
        limit: u64,
    ) -> Result<AddOutcome, ProviderError> {
        let num_blocks = self.namespace.num_blocks();
        if let Some(&bad) = blocks.iter().find(|b| b.0 as usize >= num_blocks) {
            self.metrics.guardrails_mut().unknown_blocks += 1;
            return Err(ProviderError::UnknownBlock { block: bad });
        }
        let mut clamped = false;
        if blocks.len() as u64 > limit {
            let requested = blocks.len() as u32;
            blocks.truncate(limit as usize);
            clamped = true;
            self.metrics.guardrails_mut().grab_limit_clamps += 1;
            self.record(TraceKind::GrabLimitClamped {
                job: id,
                requested,
                granted: blocks.len() as u32,
            });
        }
        let fresh: Vec<BlockId> = {
            let job = self.job(id);
            let mut batch = HashSet::new();
            blocks
                .iter()
                .copied()
                .filter(|b| !job.known_blocks.contains(b) && batch.insert(*b))
                .collect()
        };
        let dupes = (blocks.len() - fresh.len()) as u32;
        if dupes > 0 {
            self.metrics.guardrails_mut().duplicate_splits_dropped += dupes as u64;
            self.record(TraceKind::DuplicateInputDropped {
                job: id,
                splits: dupes,
            });
        }
        let added = fresh.len() as u32;
        self.add_input(id, fresh);
        Ok(AddOutcome {
            granted: added,
            clamped,
            duplicates: dupes,
        })
    }

    /// Absorb or escalate a provider failure: with retry budget left the
    /// evaluation is treated as a `Wait` and the provider is re-consulted
    /// at the next tick; otherwise the job fails with the typed error.
    fn provider_failed(&mut self, id: JobId, err: ProviderError) {
        let g = self.metrics.guardrails_mut();
        g.provider_errors += 1;
        if matches!(err, ProviderError::Panicked { .. }) {
            g.provider_panics += 1;
        }
        if self.job(id).provider_retries_left > 0 {
            self.job_mut(id).provider_retries_left -= 1;
            self.metrics.guardrails_mut().provider_retries += 1;
            self.record(TraceKind::ProviderFault {
                job: id,
                fatal: false,
            });
        } else {
            self.record(TraceKind::ProviderFault {
                job: id,
                fatal: true,
            });
            self.fail_job(id, JobError::Provider(err));
        }
    }

    fn add_input(&mut self, id: JobId, blocks: Vec<BlockId>) {
        let now = self.sim.now();
        let added = blocks.len() as u32;
        if added > 0 {
            self.record(TraceKind::InputAdded {
                job: id,
                splits: added,
            });
        }
        // Resolve replica nodes before borrowing the job mutably.
        let located: Vec<(BlockId, Vec<NodeId>)> = blocks
            .into_iter()
            .map(|b| {
                let nodes = self
                    .namespace
                    .block(b)
                    .locations
                    .iter()
                    .map(|&d| self.namespace.topology().node_of(d))
                    .collect();
                (b, nodes)
            })
            .collect();
        let job = self.job_mut(id);
        debug_assert!(job.phase == JobPhase::Map, "input added after map phase");
        for (block, nodes) in located {
            // Invariant: `validate_and_add_input` deduplicated the batch
            // against `known_blocks` before this point.
            if !job.known_blocks.insert(block) {
                debug_assert!(false, "duplicate block {block} survived validation");
                continue;
            }
            let task = TaskId(job.tasks.len() as u32);
            job.tasks.push(TaskEntry {
                block,
                added_at: now,
                enqueued_at: now,
                first_dispatched: false,
                queued: true,
                done: false,
                merged: false,
                completed_node: None,
                attempts_started: 0,
                failures: 0,
                running: Vec::new(),
                abandoned: false,
                spec_key: None,
            });
            job.pending.push(task);
            for node in nodes {
                job.pending_by_node[node.0 as usize].push_back(task);
            }
        }
        self.refresh_sched_index(id);
        // A provider can hand over a block that already lost every replica
        // (e.g. a split grabbed after the death that stripped it): settle
        // the job's fate immediately rather than wedging on a replica-less
        // pending task.
        if self.data_loss {
            self.handle_lost_input(id);
        }
    }

    fn evaluate_job(&mut self, id: JobId) {
        let job = self.job(id);
        if job.phase != JobPhase::Map || job.end_of_input {
            return;
        }
        let progress = job.progress();
        let status = self.cluster_status();
        // Blocks that landed via `evolve` since the last consultation are
        // delivered exactly once, then the buffer resets.
        let arrived = std::mem::take(&mut self.job_mut(id).arrived);
        // Approximate-aggregation plane: fold the completed splits' group
        // accumulators and probe the CLT stopping rule ahead of the driver
        // consultation, so the estimating provider decides on fresh
        // statistics.
        let probe: Option<AggProbe> = {
            let now = self.sim.now();
            let job = self.job(id);
            job.agg_plan.as_ref().map(|plan| {
                let m = job.agg_parts.len() as u32;
                let accums = fold_parts(&job.agg_parts, plan.funcs.len());
                let eval = evaluate_bound(
                    &accums,
                    m,
                    plan.total_splits,
                    &plan.funcs,
                    plan.error,
                    plan.confidence,
                );
                AggProbe {
                    job: id,
                    completed: m,
                    total: plan.total_splits,
                    groups: eval.groups,
                    bound_met: eval.bound_met,
                    worst_rel: eval.worst_rel,
                    suggested_splits: eval.suggested_splits,
                    at: now,
                }
            })
        };
        if let Some(p) = &probe {
            let now = self.sim.now();
            let since = self
                .job(id)
                .last_agg_probe_at
                .unwrap_or(self.job(id).submit_time);
            let gap = (now - since).as_millis();
            self.obs_record(id, |r| r.record_agg_probe(gap));
            self.record(TraceKind::ErrorBoundProbe {
                job: id,
                completed: p.completed,
                groups: p.groups,
                worst_ppm: rel_to_ppm(p.worst_rel),
                bound_met: p.bound_met,
            });
            let job = self.job_mut(id);
            job.last_agg_probe_at = Some(now);
            job.agg_probe = probe.clone();
        }
        // Sandboxed evaluation: panics become typed provider errors.
        let outcome = {
            let driver = &mut self.job_mut(id).driver;
            catch_unwind(AssertUnwindSafe(|| {
                driver.try_evaluate(
                    EvalContext::unlimited(&progress, &status)
                        .with_arrived(&arrived)
                        .with_agg(probe.as_ref()),
                )
            }))
            .unwrap_or_else(|p| Err(ProviderError::from_panic(ProviderStage::Evaluate, p)))
        };
        // The grab limit is read *after* the evaluation so policy ladders
        // that re-select a policy inside `evaluate` are clamped against
        // the limit their provider actually saw.
        let limit = self.job(id).driver.grab_limit(&status);
        let now = self.sim.now();
        if let Some(last) = self.job(id).last_eval_at {
            let interval = (now - last).as_millis();
            self.obs_record(id, |r| r.record_provider_eval_interval(interval));
        }
        self.job_mut(id).last_eval_at = Some(now);
        let (productive, directive, added, retried) = match outcome {
            Ok(GrowthDirective::EndOfInput) => {
                // An estimating job ending input with the bound met and
                // splits left unscanned stopped *early* — the headline
                // EARL event.
                if let Some(p) = &probe {
                    if p.bound_met && p.completed < p.total {
                        self.record(TraceKind::BoundMet {
                            job: id,
                            completed: p.completed,
                            total: p.total,
                        });
                    }
                }
                self.job_mut(id).end_of_input = true;
                self.record(TraceKind::EndOfInput { job: id });
                self.maybe_begin_reduce(id);
                (
                    true,
                    AuditDirective::EndOfInput,
                    AddOutcome::default(),
                    false,
                )
            }
            Ok(GrowthDirective::AddInput(blocks)) => {
                let requested = blocks.len() as u32;
                // New tasks launch at upcoming node heartbeats.
                match self.validate_and_add_input(id, blocks, limit) {
                    Ok(added) => (
                        added.granted > 0,
                        AuditDirective::AddInput { requested },
                        added,
                        false,
                    ),
                    Err(e) => {
                        let retried = self.job(id).provider_retries_left > 0;
                        self.provider_failed(id, e);
                        (
                            false,
                            AuditDirective::Fault { fatal: !retried },
                            AddOutcome::default(),
                            retried,
                        )
                    }
                }
            }
            Ok(GrowthDirective::Wait) => {
                (false, AuditDirective::Wait, AddOutcome::default(), false)
            }
            Err(e) => {
                let retried = self.job(id).provider_retries_left > 0;
                self.provider_failed(id, e);
                (
                    false,
                    AuditDirective::Fault { fatal: !retried },
                    AddOutcome::default(),
                    retried,
                )
            }
        };
        self.audit_push(AuditRecord {
            time: now,
            job: id,
            stage: ProviderStage::Evaluate,
            progress,
            cluster: status,
            grab_limit: limit,
            directive,
            granted: added.granted,
            clamped: added.clamped,
            duplicates_dropped: added.duplicates,
            retried,
        });
        // Livelock watchdog: a driver that keeps producing nothing while
        // the job has nothing running or pending can never make progress
        // on its own — count such evaluations and cut the job loose at the
        // threshold instead of ticking forever.
        let job = self.job_mut(id);
        if job.phase != JobPhase::Map || job.end_of_input {
            return;
        }
        if productive || job.running > 0 || !job.pending.is_empty() {
            job.idle_evaluations = 0;
            return;
        }
        if job.continuous {
            // A standing query with nothing to do is idle by design, not
            // wedged: it parks at the next tick and `evolve` wakes it.
            job.idle_evaluations = 0;
            return;
        }
        job.idle_evaluations += 1;
        let idle = job.idle_evaluations;
        if job.max_idle_evaluations > 0 && idle >= job.max_idle_evaluations {
            self.record(TraceKind::JobWedged {
                job: id,
                idle_evaluations: idle,
            });
            self.metrics.guardrails_mut().jobs_wedged += 1;
            self.fail_job(
                id,
                JobError::Wedged {
                    idle_evaluations: idle,
                },
            );
        }
    }

    fn on_eval_tick(&mut self, id: JobId) {
        if self.job(id).phase != JobPhase::Map || self.job(id).end_of_input {
            return;
        }
        self.evaluate_job(id);
        let job = self.job(id);
        if job.phase != JobPhase::Map || job.end_of_input {
            return;
        }
        if job.continuous && job.running == 0 && job.pending.is_empty() && job.arrived.is_empty() {
            // Standing query with nothing outstanding: park instead of
            // spinning the tick. `evolve` re-arms the tick when input
            // lands; with every active job parked, heartbeat chains
            // expire too, so the event queue can drain.
            self.job_mut(id).parked = true;
            self.parked_jobs += 1;
            return;
        }
        let interval = job.driver.evaluation_interval();
        self.sim
            .schedule_after(interval, Event::EvalTick { job: id });
    }

    /// Offer one node's heartbeat to the scheduler: at most
    /// `maps_per_heartbeat` launches on that node (Hadoop 0.20 semantics).
    fn schedule_node(&mut self, node: u16) {
        if !self.nodes[node as usize].alive {
            return;
        }
        let per_heartbeat = self
            .scheduler
            .maps_per_heartbeat()
            .unwrap_or(self.cost.maps_per_heartbeat);
        let cap = self.nodes[node as usize].free_slots.min(per_heartbeat);
        if cap == 0 {
            return;
        }
        let mut free_slots = vec![0u32; self.nodes.len()];
        free_slots[node as usize] = cap;
        self.schedule_with(free_slots);
    }

    fn schedule_with(&mut self, free_slots: Vec<u32>) {
        let free_total: u32 = free_slots.iter().sum();
        if free_total == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        if self.jobs.len() <= 512 {
            self.debug_check_indexes();
        }
        // Pick which runnable jobs the scheduler sees. A `Complete` policy
        // gets every runnable job (submission order, as before); prefix
        // policies get the `free_total + slack` front of the matching
        // index — O(prefix), independent of the total queued-job count.
        let runnable_total = self.runnable_by_seq.len();
        if runnable_total == 0 {
            return;
        }
        let cap = free_total as usize + VIEW_JOB_SLACK;
        let selected: Vec<u32> = match self.scheduler.view_policy() {
            ViewPolicy::Complete => self.runnable_by_seq.iter().map(|&(_, i)| i).collect(),
            ViewPolicy::SubmitOrder => self
                .runnable_by_seq
                .iter()
                .take(cap)
                .map(|&(_, i)| i)
                .collect(),
            ViewPolicy::ShareOrder => {
                let mut v: Vec<u32> = self
                    .runnable_by_share
                    .iter()
                    .take(cap)
                    .map(|&(_, _, i)| i)
                    .collect();
                // Present the prefix in submission order — the order the
                // full walk offered jobs in (schedulers re-sort anyway).
                v.sort_unstable();
                v
            }
        };
        let complete = selected.len() == runnable_total;
        // The head window only needs enough tasks to fill every free slot;
        // the small margin keeps behaviour stable when lists race.
        let head_cap = free_total as usize + 8;
        let mut sched_jobs = Vec::with_capacity(selected.len());
        let namespace = &self.namespace;
        let jobs = &mut self.jobs;
        for &idx in &selected {
            let job = &mut jobs[idx as usize];
            debug_assert!(job.phase == JobPhase::Map && !job.pending.is_empty());
            let head: Vec<TaskId> = job.pending.iter().copied().take(head_cap).collect();
            let head_replica_less: Vec<bool> = head
                .iter()
                .map(|t| {
                    namespace
                        .block(job.tasks[t.0 as usize].block)
                        .locations
                        .is_empty()
                })
                .collect();
            let mut local_by_node = vec![Vec::new(); free_slots.len()];
            for (node_idx, &free) in free_slots.iter().enumerate() {
                if free == 0 {
                    continue;
                }
                // Pop dispatched tasks off the front of this node's index,
                // then scan (skipping mid-list stale entries) just far
                // enough to fill its slots.
                let list = &mut job.pending_by_node[node_idx];
                while let Some(&t) = list.front() {
                    if job.tasks[t.0 as usize].queued {
                        break;
                    }
                    list.pop_front();
                }
                let want = free as usize + 4;
                let mut locals = Vec::with_capacity(want.min(list.len()));
                for &t in list.iter() {
                    if locals.len() == want {
                        break;
                    }
                    if job.tasks[t.0 as usize].queued {
                        locals.push(t);
                    }
                }
                local_by_node[node_idx] = locals;
            }
            sched_jobs.push(SchedJob {
                job: job.id,
                submit_seq: job.submit_seq,
                running: job.running,
                pending_total: job.pending.len() as u32,
                head,
                head_replica_less,
                local_by_node,
                banned_nodes: if job.banned_nodes.iter().any(|&b| b) {
                    job.banned_nodes.clone()
                } else {
                    Vec::new()
                },
            });
        }
        let view = SchedView {
            now: self.sim.now(),
            free_slots,
            jobs: sched_jobs,
            complete,
        };
        let assignments = self.scheduler.assign(&view);
        #[cfg(debug_assertions)]
        {
            let mut free = view.free_slots.clone();
            let mut seen = HashSet::new();
            for a in &assignments {
                assert!(
                    free[a.node.0 as usize] > 0,
                    "scheduler over-assigned {:?}",
                    a.node
                );
                free[a.node.0 as usize] -= 1;
                assert!(seen.insert((a.job, a.task)), "duplicate assignment");
                let job = view
                    .jobs
                    .iter()
                    .find(|j| j.job == a.job)
                    .expect("assignment references an offered job");
                assert!(
                    !job.banned_on(a.node),
                    "scheduler dispatched to a blacklisted node"
                );
            }
        }
        // Data plane: submit every assigned task's map work (read + map +
        // combine + partition) to the worker pool in assignment order. The
        // handles are joined at each task's *simulated* completion, so the
        // event loop overlaps with host computation; results are pure
        // functions of the unit, so simulated state and event ordering are
        // identical at any thread count.
        //
        // Memoization probe: with the memo plane on, a split whose cached
        // output matches the block's current version replays the cached
        // result instead of submitting host work. The attempt's simulated
        // schedule is untouched either way, so warm runs stay
        // byte-identical to cold ones.
        for a in assignments {
            let (block, signature) = {
                let job = self.job(a.job);
                (job.tasks[a.task.0 as usize].block, job.signature)
            };
            let version = self.namespace.version_of(block);
            let probe = self
                .memo
                .as_ref()
                .map(|m| m.probe(signature, block, version))
                .unwrap_or(MemoProbe::Miss);
            let work = match probe {
                MemoProbe::Hit => {
                    let result = self
                        .memo
                        .as_ref()
                        .expect("probe hit implies a store")
                        .get(signature, block, version)
                        .expect("probe hit implies an entry")
                        .result
                        .clone();
                    self.record(TraceKind::SplitReused {
                        job: a.job,
                        task: a.task,
                    });
                    let memo = self.metrics.memo_mut();
                    memo.splits_reused += 1;
                    memo.records_saved += result.records_read;
                    MapWork::Cached(result)
                }
                probe => {
                    if probe == MemoProbe::Stale {
                        self.record(TraceKind::SplitDirty {
                            job: a.job,
                            task: a.task,
                        });
                        self.metrics.memo_mut().splits_dirty += 1;
                    }
                    if self.memo.is_some() {
                        self.metrics.memo_mut().splits_computed += 1;
                    }
                    let unit = {
                        let job = self.job(a.job);
                        MapUnit {
                            input_format: std::sync::Arc::clone(&job.spec.input_format),
                            mapper: std::sync::Arc::clone(&job.spec.mapper),
                            combiner: job.spec.combiner.clone(),
                            block,
                            reduce_tasks: job.reduce_tasks,
                        }
                    };
                    MapWork::Computed(self.executor.submit(unit))
                }
            };
            self.dispatch(a.job, a.task, a.node, work, false);
        }
    }

    fn dispatch(
        &mut self,
        id: JobId,
        task: TaskId,
        node: NodeId,
        work: MapWork,
        speculative: bool,
    ) {
        let now = self.sim.now();
        let block = self.job(id).tasks[task.0 as usize].block;
        let local = self.namespace.is_local(block, node);
        // Under DataNode-death semantics the read source is fixed here, so
        // a death before the read starts is an observable failover. (The
        // dead-node set is empty by construction: `on_node_down` strips
        // dead holders from the namespace, so `locations` is the live set.)
        let read_disk = if self.data_loss {
            if local {
                self.namespace.local_replica(block, node)
            } else {
                self.namespace.primary_replica(block, &BTreeSet::new()).ok()
            }
        } else {
            None
        };
        // The map function's work is already queued on the data plane (see
        // `schedule_with`); its result is claimed when the modelled stages
        // complete.
        let (attempt, queue_wait, split_wait) = {
            let job = self.job_mut(id);
            if !speculative {
                // Invariant, not user-reachable: the scheduler was offered
                // only this job's pending head (`schedule_with` builds it
                // from `job.pending`), and the debug pass above rejects
                // duplicate assignments.
                let pos = job
                    .pending
                    .iter()
                    .position(|&t| t == task)
                    .expect("dispatched task must be pending");
                job.pending.remove(pos);
            }
            let entry = &mut job.tasks[task.0 as usize];
            debug_assert_eq!(entry.queued, !speculative);
            entry.queued = false;
            // Queue wait covers every pass through the pending queue
            // (speculative backups never queued); split wait is measured
            // once, admission to first dispatch.
            let queue_wait = (!speculative).then(|| (now - entry.enqueued_at).as_millis());
            let split_wait = (!entry.first_dispatched).then(|| (now - entry.added_at).as_millis());
            entry.first_dispatched = true;
            let aid = entry.attempts_started;
            entry.attempts_started += 1;
            job.running += 1;
            (aid, queue_wait, split_wait)
        };
        self.refresh_sched_index(id);
        let sched = self.scheduler.name();
        if let Some(ms) = queue_wait {
            self.obs_record(id, |reg| reg.record_queue_wait(sched, ms));
        }
        if let Some(ms) = split_wait {
            self.obs_record(id, |reg| reg.record_split_wait(ms));
        }
        let n = &mut self.nodes[node.0 as usize];
        // Invariants: `schedule_node`/`maybe_speculate` only offer slots
        // on alive nodes with free capacity (proptested in scheduler.rs).
        assert!(n.alive, "dispatch to a dead node");
        assert!(n.free_slots > 0, "dispatch to a full node");
        n.free_slots -= 1;
        self.metrics.slots_delta(now, 1.0);
        self.metrics.record_assignment(local);
        self.record(TraceKind::MapStarted {
            job: id,
            task,
            node,
            local,
        });
        let ev = self.sim.schedule_after(
            SimDuration::from_millis(self.cost.map_task_overhead_ms),
            Event::OverheadDone {
                job: id,
                task,
                attempt,
            },
        );
        self.job_mut(id).tasks[task.0 as usize]
            .running
            .push(MapAttempt {
                id: attempt,
                node,
                local,
                speculative,
                started: now,
                stage: AttemptStage::Overhead(ev),
                result: Some(work),
                read_disk,
            });
        self.refresh_spec_candidate(id, task);
    }

    fn on_overhead_done(&mut self, id: JobId, task: TaskId, attempt: u32) {
        let now = self.sim.now();
        let (block, node, local, read_disk) = {
            let entry = &self.job(id).tasks[task.0 as usize];
            let Some(a) = entry.running.iter().find(|a| a.id == attempt) else {
                return; // attempt was killed; its timer raced the cancel
            };
            (entry.block, a.node, a.local, a.read_disk)
        };
        let disk = if !self.data_loss {
            if local {
                // Invariant: `local` was computed by `Namespace::is_local`
                // at dispatch and, without DataNode-death semantics, the
                // namespace never drops replicas mid-run.
                self.namespace
                    .local_replica(block, node)
                    .expect("local task has a local replica")
            } else {
                // TaskTracker-death semantics: disks of dead nodes keep
                // serving, so the head replica is always readable.
                self.namespace
                    .primary_replica(block, &BTreeSet::new())
                    .expect("block has a replica")
            }
        } else {
            // The intended replica still exists iff it survived every
            // death since dispatch (`locations` is the live set).
            let intended = read_disk.filter(|d| self.namespace.block(block).locations.contains(d));
            match intended {
                Some(d) => d,
                None => match self.namespace.primary_replica(block, &BTreeSet::new()) {
                    Ok(to) => {
                        if let Some(from) = read_disk {
                            self.record(TraceKind::ReadFailover {
                                job: id,
                                task,
                                from,
                                to,
                            });
                            self.metrics.replica_mut().read_failovers += 1;
                        }
                        to
                    }
                    Err(_) => {
                        // Every replica is gone: the attempt cannot read its
                        // input. Kill it; `handle_lost_input` (invoked from
                        // the death that stripped the last replica) settles
                        // the job's fate.
                        let idx = self.job(id).tasks[task.0 as usize]
                            .running
                            .iter()
                            .position(|a| a.id == attempt)
                            .expect("attempt checked above");
                        self.kill_attempt(id, task, idx, true);
                        return;
                    }
                },
            }
        };
        let bytes = self.namespace.block(block).bytes as f64;
        let d = &mut self.disks[disk.0 as usize];
        let flow = d.res.add_flow(now, bytes);
        d.flows.insert(flow, (id, task, attempt));
        let entry = &mut self.job_mut(id).tasks[task.0 as usize];
        let a = entry
            .running
            .iter_mut()
            .find(|a| a.id == attempt)
            .expect("attempt checked above");
        a.stage = AttemptStage::Disk { disk: disk.0, flow };
        self.refresh_disk_wake(disk.0);
    }

    fn refresh_disk_wake(&mut self, disk: u32) {
        let now = self.sim.now();
        let d = &mut self.disks[disk as usize];
        if let Some(old) = d.wake.take() {
            self.sim.cancel(old);
        }
        if let Some(at) = d.res.next_completion(now) {
            d.wake = Some(self.sim.schedule_at(at, Event::DiskWake { disk }));
        }
    }

    fn on_disk_wake(&mut self, disk: u32) {
        let now = self.sim.now();
        self.disks[disk as usize].wake = None;
        self.disks[disk as usize].res.advance(now);
        let done = self.disks[disk as usize].res.take_completed();
        for flow in done {
            let Some((id, task, attempt)) = self.disks[disk as usize].flows.remove(&flow) else {
                continue; // attempt killed after the flow completed
            };
            let (block, local) = {
                let entry = &self.job(id).tasks[task.0 as usize];
                let Some(a) = entry.running.iter().find(|a| a.id == attempt) else {
                    continue;
                };
                (entry.block, a.local)
            };
            if local {
                self.start_cpu(id, task, attempt);
            } else {
                let bytes = self.namespace.block(block).bytes;
                let transfer = self.cost.remote_transfer_ms(bytes);
                let ev = self.sim.schedule_after(
                    SimDuration::from_millis(transfer),
                    Event::NetworkDone {
                        job: id,
                        task,
                        attempt,
                    },
                );
                let entry = &mut self.job_mut(id).tasks[task.0 as usize];
                let a = entry
                    .running
                    .iter_mut()
                    .find(|a| a.id == attempt)
                    .expect("attempt checked above");
                a.stage = AttemptStage::Network(ev);
            }
        }
        self.refresh_disk_wake(disk);
    }

    fn start_cpu(&mut self, id: JobId, task: TaskId, attempt: u32) {
        let now = self.sim.now();
        let (block, node) = {
            let entry = &self.job(id).tasks[task.0 as usize];
            let Some(a) = entry.running.iter().find(|a| a.id == attempt) else {
                return; // attempt was killed
            };
            (entry.block, a.node)
        };
        let records = self.namespace.block(block).records;
        let work = self.cost.map_cpu_work_us(records);
        let n = &mut self.nodes[node.0 as usize];
        let flow = n.cpu.add_flow(now, work);
        n.cpu_flows.insert(flow, (id, task, attempt));
        let entry = &mut self.job_mut(id).tasks[task.0 as usize];
        let a = entry
            .running
            .iter_mut()
            .find(|a| a.id == attempt)
            .expect("attempt checked above");
        a.stage = AttemptStage::Cpu { flow };
        self.refresh_cpu_wake(node.0);
    }

    fn refresh_cpu_wake(&mut self, node: u16) {
        let now = self.sim.now();
        let n = &mut self.nodes[node as usize];
        if let Some(old) = n.cpu_wake.take() {
            self.sim.cancel(old);
        }
        if let Some(at) = n.cpu.next_completion(now) {
            n.cpu_wake = Some(self.sim.schedule_at(at, Event::CpuWake { node }));
        }
    }

    fn on_cpu_wake(&mut self, node: u16) {
        let now = self.sim.now();
        self.nodes[node as usize].cpu_wake = None;
        self.nodes[node as usize].cpu.advance(now);
        let done = self.nodes[node as usize].cpu.take_completed();
        for flow in done {
            let Some((id, task, attempt)) = self.nodes[node as usize].cpu_flows.remove(&flow)
            else {
                continue; // attempt killed after the flow completed
            };
            self.finish_map_task(id, task, attempt);
        }
        self.refresh_cpu_wake(node);
    }

    fn finish_map_task(&mut self, id: JobId, task: TaskId, attempt: u32) {
        let now = self.sim.now();
        let Some(idx) = self.job(id).tasks[task.0 as usize]
            .running
            .iter()
            .position(|a| a.id == attempt)
        else {
            return; // attempt killed between flow completion and this call
        };
        // Fault injection: decide whether this attempt fails before its
        // results are applied. Every completion draws (in simulated-time
        // order), so the stream is identical at any thread count.
        let fault_budget = if let Some((plan, rng)) = &mut self.faults {
            use rand::Rng;
            (rng.gen_range(0.0..1.0) < plan.probability).then_some(plan.max_attempts)
        } else if let Some(cf) = &mut self.cluster_faults {
            use rand::Rng;
            let roll = cf.map_rng.gen_range(0.0..1.0);
            (roll < cf.plan.map_fault_probability).then_some(cf.plan.effective_max_attempts())
        } else {
            None
        };
        if let Some(max) = fault_budget {
            self.fail_map_attempt(id, task, idx, max);
            return;
        }
        let a = self.job_mut(id).tasks[task.0 as usize].running.remove(idx);
        self.refresh_spec_candidate(id, task);
        self.nodes[a.node.0 as usize].free_slots += 1;
        self.metrics.slots_delta(now, -1.0);
        if self.job(id).phase == JobPhase::Done {
            // The job already failed; late attempts just release their slot
            // (dropping the handle — nobody wants the result).
            return;
        }
        // Invariant: every attempt is created with `result: Some(work)`
        // and the work is only taken here, at its single completion.
        let work = a.result.expect("work submitted at dispatch");
        let attempt_ms = (now - a.started).as_millis();
        self.obs_record(id, |reg| reg.record_map_attempt(attempt_ms));
        if self.job(id).first_merge_at.is_none() {
            self.job_mut(id).first_merge_at = Some(now);
        }
        let already_merged = {
            let job = self.job_mut(id);
            let entry = &mut job.tasks[task.0 as usize];
            entry.done = true;
            entry.completed_node = Some(a.node);
            job.running -= 1;
            job.completed += 1;
            job.map_ms_sum += attempt_ms;
            job.map_ms_count += 1;
            entry.merged
        };
        self.refresh_spec_candidate(id, task);
        self.refresh_sched_index(id);
        if already_merged {
            // Node-loss re-execution: map output is a pure function of the
            // block, so the shuffle already holds byte-identical output.
            // Drop the duplicate and skip the job counters — counting the
            // records twice would fool drivers into an early EndOfInput.
            drop(work);
        } else {
            // Claim the result — joined from the data plane (blocks only
            // if a worker is still on it), or replayed from the memo store
            // (the attempt kept its full simulated schedule; only the host
            // recomputation was skipped) — and merge its pre-partitioned
            // output into the per-reduce shuffle buffers — the streaming
            // half of the shuffle. Merging by task id keeps the merged
            // content a pure function of the task set, whatever order
            // faults impose.
            let (result, replayed) = match work {
                MapWork::Computed(handle) => {
                    let result = handle.join();
                    self.metrics.add_host_map_ns(result.host_ns);
                    (result, false)
                }
                MapWork::Cached(result) => (result, true),
            };
            if let Some(memo) = &mut self.memo {
                let job = &self.jobs[id.0 as usize];
                let block = job.tasks[task.0 as usize].block;
                if replayed {
                    // The replaying node now holds a live copy of the map
                    // output; invalidation tracks the latest holder.
                    memo.rehome(job.signature, block, a.node);
                } else {
                    memo.insert(
                        job.signature,
                        block,
                        self.namespace.version_of(block),
                        a.node,
                        result.clone(),
                    );
                }
            }
            // Approximate-aggregation plane: lift the task's per-group
            // accumulator parts before the shuffle consumes the pairs.
            // Keyed by task id, so the fold is a pure function of the
            // completed task set — identical across thread counts and
            // fault schedules. An empty entry still counts the split as a
            // zero observation for every group.
            if let Some(n_aggs) = self.job(id).agg_plan.as_ref().map(|p| p.funcs.len()) {
                let parts: Vec<SplitAggPart> = result
                    .pairs
                    .iter_pairs()
                    .filter_map(|(k, r)| decode_group_part(k, r, n_aggs))
                    .collect();
                self.job_mut(id).agg_parts.insert(task.0, parts);
            }
            let merge_start = std::time::Instant::now();
            {
                let job = self.job_mut(id);
                job.records_processed += result.records_read;
                job.map_output_records += result.total_outputs();
                job.shuffle_bytes += result.total_output_bytes();
                job.combiner_input_records += result.combiner_input_records;
                job.combiner_output_records += result.combiner_output_records;
                if a.local {
                    job.local_tasks += 1;
                }
                job.shuffle.merge_task(task.0, result.pairs);
                job.tasks[task.0 as usize].merged = true;
            }
            self.metrics
                .add_host_shuffle_merge_ns(merge_start.elapsed().as_nanos() as u64);
        }
        // The speculative race (if any) has its winner: kill the siblings.
        while !self.job(id).tasks[task.0 as usize].running.is_empty() {
            self.kill_attempt(id, task, 0, true);
            self.metrics.faults_mut().speculative_wasted += 1;
        }
        self.record(TraceKind::MapFinished { job: id, task });
        self.maybe_begin_reduce(id);
        // Note: no scheduling here. As in Hadoop, freed slots are re-assigned
        // at the next TaskTracker heartbeat, so slots are observably free in
        // between — which is what lets Input Providers ever see `AS > 0` on
        // a busy cluster.
    }

    /// A map attempt *failed* (counted, unlike a kill): release its slot,
    /// charge the task's attempt budget and the host node's blacklist
    /// tally, and requeue the task — or, past the budget, fail the job.
    fn fail_map_attempt(&mut self, id: JobId, task: TaskId, idx: usize, max_attempts: u32) {
        let now = self.sim.now();
        let a = self.job_mut(id).tasks[task.0 as usize].running.remove(idx);
        self.refresh_spec_candidate(id, task);
        self.nodes[a.node.0 as usize].free_slots += 1;
        self.metrics.slots_delta(now, -1.0);
        self.record(TraceKind::MapFailed {
            job: id,
            task,
            attempt: a.id + 1,
        });
        if self.job(id).phase == JobPhase::Done {
            return; // job already failed; nothing more to do
        }
        let failures = {
            let job = self.job_mut(id);
            job.running -= 1;
            job.task_failures += 1;
            let entry = &mut job.tasks[task.0 as usize];
            entry.failures += 1;
            entry.failures
        };
        self.refresh_sched_index(id);
        if failures >= max_attempts {
            self.fail_job(id, JobError::TaskAttemptsExhausted { task });
            return;
        }
        // Per-job blacklisting (cluster fault model only): repeated counted
        // failures on one node ban the job from that node.
        if let Some(threshold) = self
            .cluster_faults
            .as_ref()
            .and_then(|cf| cf.plan.blacklist_threshold)
        {
            let node = a.node.0 as usize;
            let newly_banned = {
                let job = self.job_mut(id);
                job.node_failures[node] += 1;
                let trip = job.node_failures[node] >= threshold && !job.banned_nodes[node];
                if trip {
                    job.banned_nodes[node] = true;
                }
                trip
            };
            if newly_banned {
                self.metrics.faults_mut().nodes_blacklisted += 1;
                self.record(TraceKind::NodeBlacklisted {
                    job: id,
                    node: a.node,
                });
                if self.job(id).banned_nodes.iter().all(|&b| b) {
                    // Nowhere left to run: fail rather than wedge forever.
                    self.fail_job(id, JobError::AllNodesBlacklisted);
                    return;
                }
            }
        }
        let entry = &self.job(id).tasks[task.0 as usize];
        if entry.running.is_empty() && !entry.done {
            if self.job(id).deadline_hit {
                // Past a graceful deadline no new attempts launch; the
                // split is abandoned and the partial result shrinks.
                self.job_mut(id).tasks[task.0 as usize].abandoned = true;
                self.maybe_begin_reduce(id);
            } else {
                // Requeue for another attempt (back of the queue, like
                // Hadoop).
                self.requeue_task(id, task);
            }
        }
    }

    /// Put a task with no attempts in flight back in the pending queue and
    /// the per-node locality indexes.
    fn requeue_task(&mut self, id: JobId, task: TaskId) {
        let now = self.sim.now();
        let block = self.job(id).tasks[task.0 as usize].block;
        let replica_nodes: Vec<NodeId> = self
            .namespace
            .block(block)
            .locations
            .iter()
            .map(|&d| self.namespace.topology().node_of(d))
            .collect();
        let job = self.job_mut(id);
        let entry = &mut job.tasks[task.0 as usize];
        debug_assert!(!entry.queued && !entry.done && entry.running.is_empty() && !entry.abandoned);
        entry.queued = true;
        entry.enqueued_at = now;
        job.pending.push(task);
        for n in replica_nodes {
            job.pending_by_node[n.0 as usize].push_back(task);
        }
        self.refresh_sched_index(id);
    }

    /// Cancel a running attempt mid-stage (speculative-race loser or node
    /// death). Kills are free: they charge neither the task's attempt
    /// budget nor the node's blacklist tally, matching Hadoop's
    /// failed-vs-killed distinction. `free_slot` is false when the host
    /// node died with the attempt (there is no slot to give back).
    fn kill_attempt(&mut self, id: JobId, task: TaskId, idx: usize, free_slot: bool) {
        let now = self.sim.now();
        let a = self.job_mut(id).tasks[task.0 as usize].running.remove(idx);
        match a.stage {
            AttemptStage::Overhead(ev) | AttemptStage::Network(ev) => {
                self.sim.cancel(ev);
            }
            AttemptStage::Disk { disk, flow } => {
                let d = &mut self.disks[disk as usize];
                d.res.cancel_flow(now, flow);
                d.flows.remove(&flow);
                self.refresh_disk_wake(disk);
            }
            AttemptStage::Cpu { flow } => {
                let n = &mut self.nodes[a.node.0 as usize];
                n.cpu.cancel_flow(now, flow);
                n.cpu_flows.remove(&flow);
                self.refresh_cpu_wake(a.node.0);
            }
        }
        if free_slot {
            self.nodes[a.node.0 as usize].free_slots += 1;
        }
        self.metrics.slots_delta(now, -1.0);
        self.metrics.faults_mut().attempts_killed += 1;
        self.record(TraceKind::AttemptKilled {
            job: id,
            task,
            node: a.node,
        });
        self.job_mut(id).running -= 1;
        self.refresh_spec_candidate(id, task);
        self.refresh_sched_index(id);
        // `a.result` drops here: the claim is abandoned, never joined.
    }

    /// A TaskTracker dies: every attempt it hosts is killed, its slots
    /// vanish, and — Hadoop's signature response — *completed* map tasks
    /// that ran on it are re-executed while their job still maps, because
    /// the tracker stored their output and reducers can no longer fetch
    /// it. Its disks keep serving (TaskTracker death, not DataNode death).
    fn on_node_down(&mut self, node: u16) {
        if !self.nodes[node as usize].alive {
            return;
        }
        self.nodes[node as usize].alive = false;
        self.record(TraceKind::NodeLost { node: NodeId(node) });
        self.metrics.faults_mut().nodes_lost += 1;
        // DataNode-death semantics: the node's replicas die with it. Strip
        // them from the namespace (keeping `locations` the live set), tally
        // blocks now under-replicated or gone, and arm the repair daemon.
        let mut any_block_lost = false;
        if self.data_loss {
            let affected = self.namespace.drop_node_replicas(NodeId(node));
            for &block in &affected {
                self.record(TraceKind::ReplicaLost {
                    block,
                    node: NodeId(node),
                });
                self.metrics.replica_mut().replicas_lost += 1;
                let b = self.namespace.block(block);
                if b.locations.is_empty() {
                    self.metrics.replica_mut().blocks_lost += 1;
                    any_block_lost = true;
                } else if (b.locations.len() as u8) < b.replication {
                    self.under_replicated.insert(block);
                }
            }
            self.schedule_repair();
        }
        if let Some(memo) = &mut self.memo {
            if self.data_loss {
                // A cached map output can be re-derived by any surviving
                // holder of its input block: re-home the entry instead of
                // recomputing; drop it only when no replica survives.
                let namespace = &self.namespace;
                let (rehomed, dropped) = memo.rehome_or_drop_node(NodeId(node), |b| {
                    namespace
                        .block(b)
                        .locations
                        .first()
                        .map(|&d| namespace.topology().node_of(d))
                });
                self.metrics.replica_mut().memo_rehomed += rehomed;
                self.metrics.memo_mut().entries_invalidated += dropped;
            } else {
                // Cached map output lives on the node that produced (or
                // last replayed) it and dies with the tracker — drop its
                // memo entries so later probes recompute instead of
                // replaying lost output.
                let dropped = memo.invalidate_node(NodeId(node));
                self.metrics.memo_mut().entries_invalidated += dropped;
            }
        }
        let job_ids: Vec<JobId> = self.jobs.iter().map(|j| j.id).collect();
        for id in job_ids {
            let ntasks = self.job(id).tasks.len();
            for t in 0..ntasks {
                let task = TaskId(t as u32);
                while let Some(idx) = self.job(id).tasks[t]
                    .running
                    .iter()
                    .position(|a| a.node.0 == node)
                {
                    self.kill_attempt(id, task, idx, false);
                }
            }
            if self.job(id).phase == JobPhase::Done {
                continue;
            }
            for t in 0..ntasks {
                let task = TaskId(t as u32);
                let entry = &self.job(id).tasks[t];
                if !entry.done && !entry.queued && entry.running.is_empty() && !entry.abandoned {
                    if self.job(id).deadline_hit {
                        // Past a graceful deadline, a stranded task is
                        // abandoned instead of retried.
                        self.job_mut(id).tasks[t].abandoned = true;
                    } else {
                        // Stranded by the kills above: back in the queue.
                        self.requeue_task(id, task);
                    }
                } else if entry.done
                    && entry.completed_node == Some(NodeId(node))
                    && self.job(id).phase == JobPhase::Map
                    && !self.job(id).deadline_hit
                {
                    // Completed on the dead tracker: its map output is
                    // gone, so the task re-executes. (Once the job is
                    // reducing, the merged buffers model output the
                    // reducers already fetched — no re-execution, as in
                    // Hadoop once all reducers pass the copy phase.)
                    if self.data_loss && !self.namespace.block(entry.block).locations.is_empty() {
                        // Replica fast path: the task's output is already
                        // merged (the shuffle is job state), and a re-run
                        // from a surviving replica would only reproduce
                        // bytes the dup-merge guard drops — skip it.
                        self.metrics.replica_mut().reexecutions_avoided += 1;
                    } else {
                        {
                            let job = self.job_mut(id);
                            let e = &mut job.tasks[t];
                            e.done = false;
                            e.completed_node = None;
                            job.completed -= 1;
                        }
                        self.metrics.faults_mut().maps_reexecuted += 1;
                        self.requeue_task(id, task);
                    }
                }
            }
            // A block that lost its last replica makes some not-yet-done
            // splits unreadable: settle the job's fate now (typed failure,
            // or graceful partial under `allow_partial`).
            if any_block_lost {
                self.handle_lost_input(id);
            }
            // Reduce attempts running on the node restart elsewhere; their
            // input buffers are intact (the shuffle is job state, and
            // `assign_reduce` keeps a copy under the fault model).
            let nreduces = self.job(id).reduces.len();
            for r in 0..nreduces {
                let running_here = matches!(
                    self.job(id).reduces[r].state,
                    ReduceState::Running { node: n } if n.0 == node
                );
                if !running_here {
                    continue;
                }
                let timer = {
                    let entry = &mut self.job_mut(id).reduces[r];
                    entry.state = ReduceState::Pending;
                    entry.pending = None;
                    entry.timer.take()
                };
                if let Some(timer) = timer {
                    self.sim.cancel(timer);
                }
                self.metrics.faults_mut().attempts_killed += 1;
                self.pending_reduces.push_back((id, r as u32));
            }
            // Abandonment above (graceful deadline) can leave end-of-input
            // with nothing running or pending — enter the reduce phase now
            // rather than wedging. A no-op in every other state.
            self.maybe_begin_reduce(id);
        }
        self.nodes[node as usize].free_slots = 0;
        self.nodes[node as usize].free_reduce_slots = 0;
    }

    /// A dead TaskTracker rejoins with full, empty slots and a fresh
    /// heartbeat chain. Per-job blacklists persist across the rejoin.
    fn on_node_up(&mut self, node: u16) {
        if self.nodes[node as usize].alive {
            return;
        }
        let n = &mut self.nodes[node as usize];
        n.alive = true;
        n.free_slots = self.cfg.map_slots_per_node;
        n.free_reduce_slots = self.cfg.reduce_slots_per_node;
        self.record(TraceKind::NodeRejoined { node: NodeId(node) });
        self.metrics.faults_mut().nodes_rejoined += 1;
        // A rejoined DataNode comes back empty but is a fresh placement
        // candidate for blocks the repair daemon previously had no home
        // for (e.g. replication target > alive nodes).
        self.schedule_repair();
        if self.active_jobs > 0 {
            self.ensure_heartbeats();
        }
    }

    /// Arm the re-replication daemon: at most one `RepairTick` is in
    /// flight, and only while some block sits below its replication
    /// target. No-op unless `enable_re_replication` configured a period.
    fn schedule_repair(&mut self) {
        let Some(interval) = self.repair_interval else {
            return;
        };
        if self.repair_scheduled || self.under_replicated.is_empty() {
            return;
        }
        self.repair_scheduled = true;
        self.sim.schedule_after(interval, Event::RepairTick);
    }

    /// One pass of the re-replication daemon: every under-replicated block
    /// gains at most one replica per tick, copied from a surviving holder
    /// onto the lowest-numbered live node not already holding it, with
    /// uncovered racks preferred (the same spread rule as initial
    /// placement). Restored replicas re-enter the locality indexes of
    /// still-mapping jobs. The daemon re-arms only when a pass made
    /// progress; otherwise it waits for a rejoin to supply candidates.
    fn on_repair_tick(&mut self) {
        self.repair_scheduled = false;
        let blocks: Vec<BlockId> = self.under_replicated.iter().copied().collect();
        let mut restored: Vec<(BlockId, NodeId)> = Vec::new();
        for block in blocks {
            let b = self.namespace.block(block);
            let target = b.replication;
            let live = b.locations.len() as u8;
            if live >= target || live == 0 {
                // Back at target, or gone entirely — repair cannot
                // resurrect a block with zero surviving sources.
                self.under_replicated.remove(&block);
                continue;
            }
            let topo = self.namespace.topology();
            let holders: BTreeSet<NodeId> = b.locations.iter().map(|&d| topo.node_of(d)).collect();
            let covered: BTreeSet<RackId> = holders.iter().map(|&n| topo.rack_of(n)).collect();
            let pick = topo
                .nodes()
                .filter(|n| self.nodes[n.0 as usize].alive && !holders.contains(n))
                .min_by_key(|&n| (covered.contains(&topo.rack_of(n)), n.0));
            let Some(node) = pick else {
                continue; // every live node already holds one: wait for a rejoin
            };
            let disk = topo
                .disks_of(node)
                .nth(block.0 as usize % topo.disks_per_node() as usize)
                .expect("node has at least one disk");
            self.namespace.add_replica(block, disk);
            self.record(TraceKind::ReplicaRestored { block, node });
            self.metrics.replica_mut().replicas_restored += 1;
            if self.namespace.block(block).locations.len() as u8 >= target {
                self.under_replicated.remove(&block);
            }
            restored.push((block, node));
        }
        if restored.is_empty() {
            return;
        }
        // A restored replica makes its block local to a new node: refresh
        // the per-node locality lists of every job still mapping it, so
        // the schedulers can win back data-local dispatches.
        let njobs = self.jobs.len();
        for j in 0..njobs {
            let id = self.jobs[j].id;
            if self.job(id).phase != JobPhase::Map {
                continue;
            }
            for &(block, node) in &restored {
                let to_add: Vec<TaskId> = {
                    let job = self.job(id);
                    job.pending
                        .iter()
                        .copied()
                        .filter(|&t| {
                            job.tasks[t.0 as usize].block == block
                                && !job.pending_by_node[node.0 as usize].contains(&t)
                        })
                        .collect()
                };
                let job = self.job_mut(id);
                for t in to_add {
                    job.pending_by_node[node.0 as usize].push_back(t);
                }
            }
            self.refresh_sched_index(id);
        }
        self.schedule_repair();
    }

    /// Settle a job some of whose input blocks have no surviving replica:
    /// fail it with the typed [`JobError::InputLost`], or — under
    /// `mapred.job.allow.partial` — abandon exactly the unreadable splits
    /// (the graceful-deadline machinery) and let the rest commit.
    fn handle_lost_input(&mut self, id: JobId) {
        if self.job(id).phase == JobPhase::Done {
            return;
        }
        let lost: Vec<TaskId> = self
            .job(id)
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, e)| {
                !e.done && !e.abandoned && self.namespace.block(e.block).locations.is_empty()
            })
            .map(|(t, _)| TaskId(t as u32))
            .collect();
        if lost.is_empty() {
            return;
        }
        let mut blocks: Vec<BlockId> = lost
            .iter()
            .map(|&t| self.job(id).tasks[t.0 as usize].block)
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        // Kill surviving attempts of unreadable tasks (attempts on the
        // dead node itself were already killed, slotless, by the caller).
        for &t in &lost {
            while !self.job(id).tasks[t.0 as usize].running.is_empty() {
                self.kill_attempt(id, t, 0, true);
            }
        }
        let graceful = self.job(id).allow_partial;
        self.metrics.replica_mut().input_lost_jobs += 1;
        self.record(TraceKind::InputLost {
            job: id,
            blocks: blocks.len() as u32,
            graceful,
        });
        if !graceful {
            self.fail_job(id, JobError::InputLost { blocks });
            return;
        }
        let lost_set: HashSet<TaskId> = lost.iter().copied().collect();
        let job = self.job_mut(id);
        for &t in &lost {
            let e = &mut job.tasks[t.0 as usize];
            e.queued = false;
            e.abandoned = true;
        }
        // Per-node lists are cleaned lazily through the `queued` flag.
        job.pending.retain(|t| !lost_set.contains(t));
        self.refresh_sched_index(id);
        // Abandonment can leave end-of-input with nothing running or
        // pending; enter the reduce phase rather than wedging.
        self.maybe_begin_reduce(id);
    }

    /// At a node's heartbeat, consider launching one speculative backup of
    /// a laggard map attempt there (Hadoop launches speculative tasks
    /// through the same slot offers as ordinary ones, once a job has no
    /// pending work left).
    fn maybe_speculate(&mut self, node: u16) {
        let Some(cfg) = self
            .cluster_faults
            .as_ref()
            .and_then(|cf| cf.plan.speculation)
        else {
            return;
        };
        if self.nodes[node as usize].free_slots == 0 {
            return;
        }
        let now = self.sim.now();
        let mut launch = None;
        // Only jobs that have drained their pending queue and still have a
        // solo non-speculative attempt in flight are scanned — `spec_jobs`
        // is maintained incrementally, so an idle heartbeat costs O(1)
        // instead of a walk over every job's whole task table.
        for &idx in &self.spec_jobs {
            let job = &self.jobs[idx as usize];
            debug_assert!(job.phase == JobPhase::Map && job.pending.is_empty());
            if job.banned_nodes[node as usize] || job.map_ms_count < cfg.min_completed {
                continue;
            }
            let mean = job.map_ms_sum as f64 / job.map_ms_count as f64;
            // Membership in `spec_candidates` already guarantees exactly
            // one non-speculative attempt; only the per-heartbeat "not on
            // this node" filter remains.
            let candidates: Vec<SpecCandidate> = job
                .spec_candidates
                .iter()
                .filter(|&&(_, t)| job.tasks[t as usize].running[0].node.0 != node)
                .map(|&(started, t)| SpecCandidate {
                    task: t,
                    attempts_in_flight: 1,
                    speculative_in_flight: false,
                    started,
                })
                .collect();
            if let Some(task) = pick_speculative(&candidates, now, mean, job.map_ms_count, &cfg) {
                launch = Some((job.id, TaskId(task)));
                break;
            }
        }
        let Some((id, task)) = launch else {
            return;
        };
        let unit = {
            let job = self.job(id);
            MapUnit {
                input_format: std::sync::Arc::clone(&job.spec.input_format),
                mapper: std::sync::Arc::clone(&job.spec.mapper),
                combiner: job.spec.combiner.clone(),
                block: job.tasks[task.0 as usize].block,
                reduce_tasks: job.reduce_tasks,
            }
        };
        // Speculative backups always submit real work (no memo probe): a
        // backup exists because the primary is suspect, and the dup-merge
        // guard absorbs whichever copy loses.
        let handle = self.executor.submit(unit);
        self.record(TraceKind::SpeculativeLaunch {
            job: id,
            task,
            node: NodeId(node),
        });
        self.metrics.faults_mut().speculative_launched += 1;
        self.dispatch(id, task, NodeId(node), MapWork::Computed(handle), true);
    }

    fn fail_job(&mut self, id: JobId, error: JobError) {
        let now = self.sim.now();
        self.unpark(id);
        let job = self.job_mut(id);
        debug_assert!(job.phase != JobPhase::Done);
        job.phase = JobPhase::Done;
        // Drop any shuffle state already buffered; late attempts see the
        // Done phase and never merge.
        job.shuffle = ShuffleState::default();
        job.result = Some(JobResult {
            job: id,
            submit_time: job.submit_time,
            finish_time: now,
            splits_processed: job.completed,
            records_processed: job.records_processed,
            map_output_records: job.map_output_records,
            local_tasks: job.local_tasks,
            task_failures: job.task_failures,
            failed: true,
            error: Some(error),
            output: Vec::new(),
            histograms: job.hist.clone(),
            agg: None,
        });
        self.record(TraceKind::JobCompleted {
            job: id,
            failed: true,
        });
        // Late attempts of a failed job keep their spec-index entries
        // consistent through `kill_attempt`/`finish_map_task`; the job
        // itself leaves every runnable index now.
        self.refresh_sched_index(id);
        self.active_jobs -= 1;
        self.completed.push_back(id);
    }

    /// Transition to the reduce phase once end-of-input is declared and
    /// every scheduled map has finished.
    ///
    /// The heavy lifting already happened: map output was partitioned on
    /// the data-plane workers and merged into the per-reduce buffers at
    /// each map's completion (`finish_map_task`). This step only spreads
    /// the unmaterialised remainder across partitions, records skew
    /// statistics, and queues the reduce tasks — O(`reduce_tasks`), no
    /// map-output pair is visited.
    fn maybe_begin_reduce(&mut self, id: JobId) {
        let job = self.job(id);
        if job.phase != JobPhase::Map
            || !job.end_of_input
            || job.running > 0
            || !job.pending.is_empty()
        {
            return;
        }
        let job = self.job_mut(id);
        job.phase = JobPhase::Reduce;
        let r = job.reduce_tasks;
        let buffers = std::mem::take(&mut job.shuffle).into_buffers();
        debug_assert_eq!(buffers.len(), r as usize);
        let mut reduces: Vec<ReduceEntry> = buffers
            .into_iter()
            .map(|buffer| ReduceEntry {
                state: ReduceState::Pending,
                started_at: SimTime::ZERO,
                buffer,
                pending: None,
                timer: None,
                attempts: 0,
                output: Vec::new(),
            })
            .collect();
        // Unmaterialised output (counts/bytes only) spreads evenly.
        let materialized_bytes: u64 = reduces.iter().map(|e| e.buffer.shuffle_bytes).sum();
        let materialized_records: u64 = reduces.iter().map(|e| e.buffer.input_records).sum();
        let extra_bytes = job.shuffle_bytes.saturating_sub(materialized_bytes);
        let extra_records = job.map_output_records.saturating_sub(materialized_records);
        for (i, entry) in reduces.iter_mut().enumerate() {
            let i = i as u64;
            entry.buffer.shuffle_bytes +=
                extra_bytes / r as u64 + u64::from(i < extra_bytes % r as u64);
            entry.buffer.input_records +=
                extra_records / r as u64 + u64::from(i < extra_records % r as u64);
        }
        let max_partition_bytes = reduces
            .iter()
            .map(|e| e.buffer.shuffle_bytes)
            .max()
            .unwrap_or(0);
        let min_partition_bytes = reduces
            .iter()
            .map(|e| e.buffer.shuffle_bytes)
            .min()
            .unwrap_or(0);
        let combiner_in = job.combiner_input_records;
        let combiner_out = job.combiner_output_records;
        job.reduces = reduces;
        self.metrics.record_shuffle(
            combiner_in,
            combiner_out,
            max_partition_bytes,
            min_partition_bytes,
        );
        // Shuffle-merge window: first map completion to shuffle-ready
        // (zero for a job that never ran a map).
        let merge_ms = self
            .job(id)
            .first_merge_at
            .map(|t0| (self.sim.now() - t0).as_millis())
            .unwrap_or(0);
        self.obs_record(id, |reg| reg.record_shuffle_merge(merge_ms));
        self.record(TraceKind::ShuffleReady {
            job: id,
            partitions: r,
            combiner_in,
            combiner_out,
            max_partition_bytes,
            min_partition_bytes,
        });
        for i in 0..r {
            self.pending_reduces.push_back((id, i));
        }
    }

    /// Offer one reduce launch on `node` (one per heartbeat, like maps in
    /// stock Hadoop). Reduce placement is not locality-sensitive — inputs
    /// arrive over the network from every mapper anyway.
    fn assign_reduce(&mut self, node: u16) {
        if !self.nodes[node as usize].alive || self.nodes[node as usize].free_reduce_slots == 0 {
            return;
        }
        // Skip stale queue entries whose job already finished (a failed
        // job's reduces never launch).
        let (id, r) = loop {
            let Some((id, r)) = self.pending_reduces.pop_front() else {
                return;
            };
            if self.job(id).phase == JobPhase::Reduce {
                break (id, r);
            }
        };
        self.nodes[node as usize].free_reduce_slots -= 1;
        let now = self.sim.now();
        let cost = self.cost;
        let keep_backup = self.cluster_faults.is_some();
        // Submit the partition's record work (the user reducer over its
        // groups) to the data plane now; the simulated duration below
        // models the same work, so the handle is ripe by `ReduceDone`.
        let (duration, unit) = {
            let job = self.job_mut(id);
            let reducer = std::sync::Arc::clone(&job.spec.reducer);
            let entry = &mut job.reduces[r as usize];
            debug_assert_eq!(entry.state, ReduceState::Pending);
            entry.state = ReduceState::Running { node: NodeId(node) };
            entry.started_at = now;
            let duration =
                cost.reduce_duration_ms(entry.buffer.shuffle_bytes, entry.buffer.input_records);
            // Under the cluster fault model the buffer keeps its data (a
            // clone feeds the attempt) so a failed or killed attempt can
            // re-execute from the same input; fault-free runs move it.
            let (key_order, groups) = if keep_backup {
                (entry.buffer.key_order.clone(), entry.buffer.groups.clone())
            } else {
                (
                    std::mem::take(&mut entry.buffer.key_order),
                    std::mem::take(&mut entry.buffer.groups),
                )
            };
            let unit = ReduceUnit {
                reducer,
                key_order,
                groups,
            };
            (duration, unit)
        };
        let handle = self.executor.submit(unit);
        let ev = self.sim.schedule_after(
            SimDuration::from_millis(duration),
            Event::ReduceDone { job: id, reduce: r },
        );
        {
            let entry = &mut self.job_mut(id).reduces[r as usize];
            entry.pending = Some(handle);
            entry.timer = Some(ev);
        }
        self.record(TraceKind::ReduceStarted {
            job: id,
            reduce: r,
            node: NodeId(node),
        });
    }

    fn on_reduce_done(&mut self, id: JobId, r: u32) {
        let now = self.sim.now();
        // Claim the data-plane result (the user reducer ran on a worker,
        // submitted at slot assignment).
        let (node, handle) = {
            let job = self.job_mut(id);
            let entry = &mut job.reduces[r as usize];
            let ReduceState::Running { node } = entry.state else {
                panic!("reduce completed while not running");
            };
            entry.timer = None;
            // Invariant: `assign_reduce` stores the handle with the timer
            // whose expiry delivered this event; node death cancels the
            // timer when it clears the handle.
            (
                node,
                entry
                    .pending
                    .take()
                    .expect("reduce submitted at assignment"),
            )
        };
        self.nodes[node.0 as usize].free_reduce_slots += 1;
        if self.job(id).phase == JobPhase::Done {
            drop(handle); // job already failed; nobody wants the result
            return;
        }
        // Reduce-attempt fault draw (cluster fault model only; drawn at
        // every completion so the stream stays aligned).
        if let Some(cf) = &mut self.cluster_faults {
            use rand::Rng;
            let roll = cf.reduce_rng.gen_range(0.0..1.0);
            if roll < cf.plan.reduce_fault_probability {
                let max = cf.plan.effective_max_attempts();
                drop(handle);
                let attempts = {
                    let entry = &mut self.job_mut(id).reduces[r as usize];
                    entry.state = ReduceState::Pending;
                    entry.attempts += 1;
                    entry.attempts
                };
                self.record(TraceKind::ReduceFailed {
                    job: id,
                    reduce: r,
                    attempt: attempts,
                });
                self.metrics.faults_mut().reduce_failures += 1;
                if attempts >= max {
                    self.fail_job(id, JobError::ReduceAttemptsExhausted { reduce: r });
                } else {
                    self.pending_reduces.push_back((id, r));
                }
                return;
            }
        }
        let result = handle.join();
        self.metrics.add_host_reduce_ns(result.host_ns);
        let (reduce_ms, all_done) = {
            let job = self.job_mut(id);
            let entry = &mut job.reduces[r as usize];
            entry.state = ReduceState::Done;
            entry.output = result.output;
            // Release the re-execution backup the fault model retained.
            entry.buffer.key_order = Default::default();
            entry.buffer.groups = Default::default();
            let reduce_ms = (now - entry.started_at).as_millis();
            job.reduces_done += 1;
            (reduce_ms, job.reduces_done == job.reduce_tasks)
        };
        self.obs_record(id, |reg| reg.record_reduce(reduce_ms));
        self.record(TraceKind::ReduceFinished { job: id, reduce: r });
        if all_done {
            self.finalize_job(id, now);
        }
    }

    fn finalize_job(&mut self, id: JobId, now: SimTime) {
        let job = self.job_mut(id);
        job.phase = JobPhase::Done;
        let output: Vec<(Key, Record)> = job
            .reduces
            .iter_mut()
            .flat_map(|e| std::mem::take(&mut e.output))
            .collect();
        // A sampling job that ran out of matching input (or hit a graceful
        // deadline) below its `k` still completes: the paper's answer set
        // is correct, just smaller. Surface that as a typed trace event
        // and counter rather than a failure.
        let partial = sample_size_of(&job.spec.conf)
            .map(|k| (output.len() as u64, k))
            .filter(|&(found, k)| found < k);
        // Approximate-aggregation plane: classify the finish. Estimating
        // jobs re-fold at the final task set (deterministic, so a warm
        // re-run reports byte-identical statistics); exact grouped
        // aggregates (`mapred.agg.total.splits` without an error bound)
        // are always `Exact`.
        let agg = if let Some(plan) = &job.agg_plan {
            let m = job.agg_parts.len() as u32;
            let accums = fold_parts(&job.agg_parts, plan.funcs.len());
            let eval = evaluate_bound(
                &accums,
                m,
                plan.total_splits,
                &plan.funcs,
                plan.error,
                plan.confidence,
            );
            let outcome = if m >= plan.total_splits {
                AggOutcome::Exact
            } else if eval.bound_met {
                AggOutcome::BoundMet
            } else {
                AggOutcome::BudgetExhausted
            };
            Some(AggReport {
                outcome,
                completed: m,
                total: plan.total_splits,
                groups: eval.groups,
                worst_rel: eval.worst_rel,
            })
        } else {
            job.spec
                .conf
                .get(keys::AGG_TOTAL_SPLITS)
                .and_then(|v| v.parse::<u32>().ok())
                .map(|total| AggReport {
                    outcome: AggOutcome::Exact,
                    completed: job.completed,
                    total,
                    groups: output.len() as u32,
                    worst_rel: 0.0,
                })
        };
        job.result = Some(JobResult {
            job: id,
            submit_time: job.submit_time,
            finish_time: now,
            splits_processed: job.completed,
            records_processed: job.records_processed,
            map_output_records: job.map_output_records,
            local_tasks: job.local_tasks,
            task_failures: job.task_failures,
            failed: false,
            error: None,
            output,
            histograms: job.hist.clone(),
            agg,
        });
        if let Some((found, requested)) = partial {
            self.metrics.guardrails_mut().partial_samples += 1;
            self.record(TraceKind::PartialSample {
                job: id,
                found,
                requested,
            });
        }
        self.record(TraceKind::JobCompleted {
            job: id,
            failed: false,
        });
        self.active_jobs -= 1;
        self.completed.push_back(id);
    }
}

/// Convenience: read the configured sample size `k` from a job's conf.
pub fn sample_size_of(conf: &crate::conf::JobConf) -> Option<u64> {
    conf.get(keys::SAMPLING_K).and_then(|v| v.parse().ok())
}
