//! The discrete-event MapReduce runtime: JobTracker, TaskTrackers, and the
//! physical model, in one deterministic event loop.
//!
//! ## Execution model
//!
//! A submitted job's [`GrowthDriver`] supplies its initial splits; each
//! split becomes a pending map task. At every *scheduling point* (submit,
//! input added, task finished, heartbeat) the pluggable [`TaskScheduler`]
//! matches free map slots to pending tasks. A running map task passes
//! through three stages, each modelled on shared resources:
//!
//! 1. **start-up overhead** — fixed delay (Hadoop task launch),
//! 2. **disk read** — a flow of `split-bytes` on the source disk's
//!    processor-sharing resource; non-local reads add a network transfer,
//! 3. **CPU** — a flow of `records × cost` core-µs on the node's shared
//!    CPU resource.
//!
//! Map *semantics* (the user's mapper over real records, plus the optional
//! combiner and the hash partitioning into `mapred.reduce.tasks` buckets)
//! execute on the data-plane worker pool, submitted at dispatch; the
//! stages only decide *when* the results land. Each completed map's
//! pre-partitioned output is merged into the per-reduce shuffle buffers at
//! its simulated completion (streaming shuffle — see [`crate::shuffle`]),
//! so entering the reduce phase costs O(`reduce_tasks`). Dynamic jobs are
//! re-evaluated every `EvaluationInterval`; once the driver declares
//! end-of-input and all scheduled maps finish, the buffered reduce tasks
//! (one for the paper's sampling jobs) queue for per-node reduce slots,
//! run the user reducer on the data plane, and complete the job when the
//! last one commits.
//!
//! Everything — including the schedulers' tie-breaking — is deterministic,
//! so a run is a pure function of configuration and seeds.

use std::collections::{HashMap, HashSet, VecDeque};

use incmr_dfs::{BlockId, Namespace, NodeId};
use incmr_simkit::resource::{FlowId, PsResource};
use incmr_simkit::{EventId, Sim, SimDuration, SimTime};

use crate::cluster::{ClusterConfig, ClusterStatus};
use crate::conf::keys;
use crate::cost::CostModel;
use crate::exec::Key;
use crate::job::{
    EvalContext, GrowthDirective, GrowthDriver, JobId, JobProgress, JobResult, JobSpec, TaskId,
};
use crate::metrics::ClusterMetrics;
use crate::parallel::{MapTaskResult, MapUnit, ParallelExecutor, ReduceTaskResult, ReduceUnit, UnitHandle};
use crate::scheduler::{SchedJob, SchedView, TaskScheduler};
use crate::shuffle::ShuffleState;
use crate::trace::{TraceEvent, TraceKind};
use incmr_data::Record;

/// Conf key bounding how many map-output records a job materialises (the
/// rest are tracked as counts/bytes only). Sampling jobs set this to `k`.
pub const MATERIALIZE_CAP_KEY: &str = "mapred.job.materialize.cap";

/// Interval at which resource counters are folded into metrics series (the
/// paper samples at 30 s).
const METRICS_INTERVAL: SimDuration = SimDuration::from_secs(30);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    Heartbeat { node: u16 },
    OverheadDone { job: JobId, task: TaskId },
    DiskWake { disk: u32 },
    NetworkDone { job: JobId, task: TaskId },
    CpuWake { node: u16 },
    EvalTick { job: JobId },
    ReduceDone { job: JobId, reduce: u32 },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TaskState {
    Pending,
    Running { node: NodeId, local: bool },
    Done,
}

struct TaskEntry {
    block: BlockId,
    state: TaskState,
    /// Claim on the attempt's data-plane result: submitted at dispatch,
    /// joined at simulated completion. Dropped (not joined) on a failed
    /// attempt — the next attempt submits afresh.
    result: Option<UnitHandle<MapTaskResult>>,
    attempts: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReduceState {
    Pending,
    Running { node: NodeId },
    Done,
}

/// One reduce task: its streamed-in shuffle partition (see
/// [`crate::shuffle`]) plus its in-flight data-plane work and output.
struct ReduceEntry {
    state: ReduceState,
    buffer: crate::shuffle::PartitionBuffer,
    /// Claim on the reduce's data-plane result: submitted when the task
    /// is assigned a slot, joined at its simulated completion.
    pending: Option<UnitHandle<ReduceTaskResult>>,
    output: Vec<(Key, Record)>,
}

/// Fault-injection configuration: each map-task attempt fails with
/// `probability`, and a task that fails `max_attempts` times fails its job
/// (Hadoop's `mapred.map.max.attempts` semantics, default 4).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Per-attempt failure probability in `[0, 1)`.
    pub probability: f64,
    /// Attempts allowed per task before the job is failed.
    pub max_attempts: u32,
    /// Seed for the (deterministic) failure draws.
    pub seed: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Map,
    Reduce,
    Done,
}

struct JobEntry {
    id: JobId,
    spec: JobSpec,
    driver: Box<dyn GrowthDriver>,
    tasks: Vec<TaskEntry>,
    known_blocks: HashSet<BlockId>,
    pending: Vec<TaskId>,
    /// Per-node index of pending tasks whose split has a replica on that
    /// node (lazily cleaned — entries may reference dispatched tasks).
    pending_by_node: Vec<Vec<TaskId>>,
    running: u32,
    completed: u32,
    end_of_input: bool,
    phase: JobPhase,
    submit_seq: u64,
    submit_time: SimTime,
    records_processed: u64,
    map_output_records: u64,
    shuffle_bytes: u64,
    local_tasks: u32,
    task_failures: u32,
    /// Per-reduce shuffle buffers, merged into incrementally as maps
    /// complete (bounded by `mapred.job.materialize.cap`).
    shuffle: ShuffleState,
    combiner_input_records: u64,
    combiner_output_records: u64,
    reduce_tasks: u32,
    reduces: Vec<ReduceEntry>,
    reduces_done: u32,
    result: Option<JobResult>,
}

impl JobEntry {
    fn progress(&self) -> JobProgress {
        JobProgress {
            job: self.id,
            splits_added: self.tasks.len() as u32,
            splits_completed: self.completed,
            splits_running: self.running,
            splits_pending: self.pending.len() as u32,
            records_processed: self.records_processed,
            map_output_records: self.map_output_records,
        }
    }
}

struct NodeState {
    free_slots: u32,
    free_reduce_slots: u32,
    cpu: PsResource,
    cpu_flows: HashMap<FlowId, (JobId, TaskId)>,
    cpu_wake: Option<EventId>,
}

struct DiskState {
    res: PsResource,
    flows: HashMap<FlowId, (JobId, TaskId)>,
    wake: Option<EventId>,
}

/// The simulated MapReduce cluster: submit jobs, run the clock, collect
/// results and metrics.
pub struct MrRuntime {
    cfg: ClusterConfig,
    cost: CostModel,
    namespace: Namespace,
    scheduler: Box<dyn TaskScheduler>,
    sim: Sim<Event>,
    jobs: Vec<JobEntry>,
    nodes: Vec<NodeState>,
    disks: Vec<DiskState>,
    completed: VecDeque<JobId>,
    /// Reduce tasks waiting for a reduce slot, in creation order.
    pending_reduces: VecDeque<(JobId, u32)>,
    metrics: ClusterMetrics,
    /// Resource totals snapshotted at the last `reset_metrics`, subtracted
    /// from cumulative counters so metrics windows restart cleanly.
    metrics_base: (f64, f64),
    /// Number of per-node heartbeat chains currently self-perpetuating.
    heartbeats_live: u32,
    active_jobs: u32,
    faults: Option<(FaultPlan, incmr_simkit::rng::DetRng)>,
    trace: Option<Vec<TraceEvent>>,
    /// Data-plane worker pool (see [`crate::parallel`]); serial at
    /// `Parallelism::SERIAL`. Never touches simulated time.
    executor: ParallelExecutor,
}

impl MrRuntime {
    /// Build a runtime over a populated namespace.
    pub fn new(
        cfg: ClusterConfig,
        cost: CostModel,
        namespace: Namespace,
        scheduler: Box<dyn TaskScheduler>,
    ) -> Self {
        let topo = cfg.topology;
        assert_eq!(
            topo,
            *namespace.topology(),
            "namespace must be laid out on the runtime's topology"
        );
        let nodes = (0..topo.num_nodes())
            .map(|_| NodeState {
                free_slots: cfg.map_slots_per_node,
                free_reduce_slots: cfg.reduce_slots_per_node,
                cpu: PsResource::new(topo.cores_per_node() as f64 * 1e6),
                cpu_flows: HashMap::new(),
                cpu_wake: None,
            })
            .collect();
        let disks = (0..topo.num_disks())
            .map(|_| DiskState {
                res: PsResource::new(cost.disk_bw_bytes_per_sec),
                flows: HashMap::new(),
                wake: None,
            })
            .collect();
        let metrics = ClusterMetrics::new(
            SimTime::ZERO,
            topo.num_cores(),
            topo.num_disks(),
            cfg.total_map_slots(),
            METRICS_INTERVAL,
        );
        MrRuntime {
            cfg,
            cost,
            namespace,
            scheduler,
            sim: Sim::new(),
            jobs: Vec::new(),
            nodes,
            disks,
            completed: VecDeque::new(),
            pending_reduces: VecDeque::new(),
            metrics,
            metrics_base: (0.0, 0.0),
            heartbeats_live: 0,
            active_jobs: 0,
            faults: None,
            trace: None,
            executor: ParallelExecutor::new(cfg.parallelism),
        }
    }

    /// Start recording a [`TraceEvent`] timeline (see [`crate::trace`]).
    pub fn enable_tracing(&mut self) {
        if self.trace.is_none() {
            self.trace = Some(Vec::new());
        }
    }

    /// Drain the recorded trace (empty if tracing was never enabled);
    /// tracing stays enabled with a fresh buffer.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.take() {
            Some(events) => {
                self.trace = Some(Vec::new());
                events
            }
            None => Vec::new(),
        }
    }

    fn record(&mut self, kind: TraceKind) {
        if let Some(trace) = &mut self.trace {
            trace.push(TraceEvent {
                time: self.sim.now(),
                kind,
            });
        }
    }

    /// Disable fault injection (test helper).
    #[doc(hidden)]
    pub fn faults_off_for_test(&mut self) {
        self.faults = None;
    }

    /// Enable deterministic fault injection for subsequent map tasks.
    pub fn inject_faults(&mut self, plan: FaultPlan) {
        assert!(
            (0.0..1.0).contains(&plan.probability),
            "probability must be in [0, 1)"
        );
        assert!(plan.max_attempts > 0);
        let rng = incmr_simkit::rng::DetRng::seed_from(plan.seed);
        self.faults = Some((plan, rng));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The namespace (read access for callers building job inputs).
    pub fn namespace(&self) -> &Namespace {
        &self.namespace
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cost model in effect.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Point-in-time cluster load snapshot (what Input Providers receive).
    pub fn cluster_status(&self) -> ClusterStatus {
        let free: u32 = self.nodes.iter().map(|n| n.free_slots).sum();
        let queued = self
            .jobs
            .iter()
            .filter(|j| j.phase == JobPhase::Map)
            .map(|j| j.pending.len() as u32)
            .sum();
        ClusterStatus {
            total_map_slots: self.cfg.total_map_slots(),
            occupied_map_slots: self.cfg.total_map_slots() - free,
            running_jobs: self.active_jobs,
            queued_map_tasks: queued,
        }
    }

    /// Submit a job with its growth driver. Takes effect immediately (at
    /// the current simulated time).
    pub fn submit(&mut self, spec: JobSpec, mut driver: Box<dyn GrowthDriver>) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        let materialize_cap = spec
            .conf
            .get_u64_or(MATERIALIZE_CAP_KEY, u64::MAX)
            .expect("materialize cap must be numeric");
        let reduce_tasks = spec
            .conf
            .get_u64_or(keys::NUM_REDUCE_TASKS, 1)
            .expect("reduce task count must be numeric")
            .max(1) as u32;
        let status = self.cluster_status();
        let initial = driver.initial_input(&status);
        let interval = driver.evaluation_interval();
        let num_nodes = self.cfg.topology.num_nodes() as usize;
        let entry = JobEntry {
            id,
            spec,
            driver,
            tasks: Vec::new(),
            known_blocks: HashSet::new(),
            pending: Vec::new(),
            pending_by_node: vec![Vec::new(); num_nodes],
            running: 0,
            completed: 0,
            end_of_input: false,
            phase: JobPhase::Map,
            submit_seq: id.0 as u64,
            submit_time: self.sim.now(),
            records_processed: 0,
            map_output_records: 0,
            shuffle_bytes: 0,
            local_tasks: 0,
            task_failures: 0,
            shuffle: ShuffleState::new(reduce_tasks, materialize_cap),
            combiner_input_records: 0,
            combiner_output_records: 0,
            reduce_tasks,
            reduces: Vec::new(),
            reduces_done: 0,
            result: None,
        };
        self.jobs.push(entry);
        self.active_jobs += 1;
        self.record(TraceKind::JobSubmitted { job: id });
        self.add_input(id, initial);
        // First evaluation happens immediately: static drivers end their
        // input here; dynamic providers typically wait for statistics. The
        // initial tasks launch at the nodes' next heartbeats, as in Hadoop.
        self.evaluate_job(id);
        if !self.job(id).end_of_input {
            self.sim
                .schedule_after(interval, Event::EvalTick { job: id });
        }
        self.ensure_heartbeats();
        id
    }

    /// Process a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, ev)) = self.sim.pop() else {
            return false;
        };
        self.handle(ev);
        true
    }

    /// Run until no events remain (all submitted jobs completed).
    pub fn run_until_idle(&mut self) {
        while self.step() {}
    }

    /// Run until the clock passes `limit` or the queue drains.
    pub fn run_until(&mut self, limit: SimTime) {
        while let Some(t) = self.sim.peek_time() {
            if t > limit {
                break;
            }
            self.step();
        }
        self.sim.advance_to(limit);
    }

    /// Run until some job completes; returns it, or `None` if the queue
    /// drained first.
    pub fn run_until_any_completion(&mut self) -> Option<JobId> {
        loop {
            if let Some(done) = self.completed.pop_front() {
                return Some(done);
            }
            if !self.step() {
                return None;
            }
        }
    }

    /// Drain the completed-jobs queue.
    pub fn take_completed(&mut self) -> Vec<JobId> {
        self.completed.drain(..).collect()
    }

    /// The result of a completed job.
    ///
    /// # Panics
    /// Panics if the job has not completed.
    pub fn job_result(&self, id: JobId) -> &JobResult {
        self.job(id).result.as_ref().expect("job not yet complete")
    }

    /// Whether a job has completed.
    pub fn is_complete(&self, id: JobId) -> bool {
        self.job(id).phase == JobPhase::Done
    }

    /// Release a completed job's bulky state (result output records, task
    /// tables, reduce buffers), keeping only the scalar accounting in its
    /// [`JobResult`]. Long-running closed-loop drivers call this after
    /// reading a result so memory stays bounded by *active* jobs.
    ///
    /// # Panics
    /// Panics if the job has not completed.
    pub fn release_job_result(&mut self, id: JobId) {
        let job = self.job_mut(id);
        assert!(job.phase == JobPhase::Done, "cannot release a live job");
        if let Some(result) = &mut job.result {
            result.output = Vec::new();
        }
        job.tasks = Vec::new();
        job.pending_by_node = Vec::new();
        job.known_blocks = HashSet::new();
        job.reduces = Vec::new();
        job.shuffle = ShuffleState::default();
    }

    /// Live progress for a job (any phase).
    pub fn job_progress(&self, id: JobId) -> JobProgress {
        self.job(id).progress()
    }

    /// The metrics collector.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Restart metrics collection at the current instant (used to discard
    /// a workload's warm-up phase). Slot occupancy restarts at the current
    /// occupancy level; locality counters restart at zero.
    pub fn reset_metrics(&mut self) {
        let now = self.sim.now();
        let occupied = (self.cfg.total_map_slots()
            - self.nodes.iter().map(|n| n.free_slots).sum::<u32>()) as f64;
        // Note the resource cumulative totals restart too: we snapshot the
        // current totals and subtract them at observe time.
        let mut fresh = ClusterMetrics::new(
            now,
            self.cfg.topology.num_cores(),
            self.cfg.topology.num_disks(),
            self.cfg.total_map_slots(),
            METRICS_INTERVAL,
        );
        fresh.slots_delta(now, occupied);
        self.metrics_base = self.resource_totals();
        self.metrics = fresh;
    }

    // ------------------------------------------------------------------
    // internals
    // ------------------------------------------------------------------

    fn job(&self, id: JobId) -> &JobEntry {
        &self.jobs[id.0 as usize]
    }

    fn job_mut(&mut self, id: JobId) -> &mut JobEntry {
        &mut self.jobs[id.0 as usize]
    }

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::Heartbeat { node } => self.on_heartbeat(node),
            Event::OverheadDone { job, task } => self.on_overhead_done(job, task),
            Event::DiskWake { disk } => self.on_disk_wake(disk),
            Event::NetworkDone { job, task } => self.start_cpu(job, task),
            Event::CpuWake { node } => self.on_cpu_wake(node),
            Event::EvalTick { job } => self.on_eval_tick(job),
            Event::ReduceDone { job, reduce } => self.on_reduce_done(job, reduce),
        }
    }

    /// Start one self-perpetuating heartbeat chain per node (staggered, as
    /// real TaskTrackers are). Chains expire when no jobs remain active.
    fn ensure_heartbeats(&mut self) {
        if self.heartbeats_live > 0 {
            return;
        }
        let n = self.nodes.len() as u64;
        for node in 0..self.nodes.len() as u16 {
            let stagger = self.cost.heartbeat_ms * (node as u64 + 1) / n;
            self.sim
                .schedule_after(SimDuration::from_millis(stagger), Event::Heartbeat { node });
        }
        self.heartbeats_live = self.nodes.len() as u32;
    }

    fn resource_totals(&mut self) -> (f64, f64) {
        let now = self.sim.now();
        let cpu: f64 = self
            .nodes
            .iter_mut()
            .map(|n| n.cpu.drained_total(now))
            .sum();
        let disk: f64 = self
            .disks
            .iter_mut()
            .map(|d| d.res.drained_total(now))
            .sum();
        (cpu, disk)
    }

    fn observe_metrics(&mut self) {
        let now = self.sim.now();
        let (cpu, disk) = self.resource_totals();
        let (cpu0, disk0) = self.metrics_base;
        self.metrics.observe(now, cpu - cpu0, disk - disk0);
    }

    fn on_heartbeat(&mut self, node: u16) {
        if self.active_jobs == 0 {
            self.heartbeats_live -= 1;
            return;
        }
        if node == 0 {
            self.observe_metrics();
        }
        self.schedule_node(node);
        self.assign_reduce(node);
        self.sim.schedule_after(
            SimDuration::from_millis(self.cost.heartbeat_ms),
            Event::Heartbeat { node },
        );
    }

    fn add_input(&mut self, id: JobId, blocks: Vec<BlockId>) {
        let added = blocks.len() as u32;
        if added > 0 {
            self.record(TraceKind::InputAdded {
                job: id,
                splits: added,
            });
        }
        // Resolve replica nodes before borrowing the job mutably.
        let located: Vec<(BlockId, Vec<NodeId>)> = blocks
            .into_iter()
            .map(|b| {
                let nodes = self
                    .namespace
                    .block(b)
                    .locations
                    .iter()
                    .map(|&d| self.namespace.topology().node_of(d))
                    .collect();
                (b, nodes)
            })
            .collect();
        let job = self.job_mut(id);
        debug_assert!(job.phase == JobPhase::Map, "input added after map phase");
        for (block, nodes) in located {
            if !job.known_blocks.insert(block) {
                // Drivers must not add a split twice; ignore defensively.
                debug_assert!(false, "driver re-added block {block}");
                continue;
            }
            let task = TaskId(job.tasks.len() as u32);
            job.tasks.push(TaskEntry {
                block,
                state: TaskState::Pending,
                result: None,
                attempts: 0,
            });
            job.pending.push(task);
            for node in nodes {
                job.pending_by_node[node.0 as usize].push(task);
            }
        }
    }

    fn evaluate_job(&mut self, id: JobId) {
        let job = self.job(id);
        if job.phase != JobPhase::Map || job.end_of_input {
            return;
        }
        let progress = job.progress();
        let status = self.cluster_status();
        let directive = self
            .job_mut(id)
            .driver
            .evaluate(EvalContext::unlimited(&progress, &status));
        match directive {
            GrowthDirective::EndOfInput => {
                self.job_mut(id).end_of_input = true;
                self.record(TraceKind::EndOfInput { job: id });
                self.maybe_begin_reduce(id);
            }
            GrowthDirective::AddInput(blocks) => {
                // New tasks launch at upcoming node heartbeats.
                self.add_input(id, blocks);
            }
            GrowthDirective::Wait => {}
        }
    }

    fn on_eval_tick(&mut self, id: JobId) {
        if self.job(id).phase != JobPhase::Map || self.job(id).end_of_input {
            return;
        }
        self.evaluate_job(id);
        let job = self.job(id);
        if job.phase == JobPhase::Map && !job.end_of_input {
            let interval = job.driver.evaluation_interval();
            self.sim
                .schedule_after(interval, Event::EvalTick { job: id });
        }
    }

    /// Offer one node's heartbeat to the scheduler: at most
    /// `maps_per_heartbeat` launches on that node (Hadoop 0.20 semantics).
    fn schedule_node(&mut self, node: u16) {
        let per_heartbeat = self
            .scheduler
            .maps_per_heartbeat()
            .unwrap_or(self.cost.maps_per_heartbeat);
        let cap = self.nodes[node as usize].free_slots.min(per_heartbeat);
        if cap == 0 {
            return;
        }
        let mut free_slots = vec![0u32; self.nodes.len()];
        free_slots[node as usize] = cap;
        self.schedule_with(free_slots);
    }

    fn schedule_with(&mut self, free_slots: Vec<u32>) {
        let free_total: u32 = free_slots.iter().sum();
        if free_total == 0 {
            return;
        }
        // The head window only needs enough tasks to fill every free slot;
        // the small margin keeps behaviour stable when lists race.
        let head_cap = free_total as usize + 8;
        let mut sched_jobs = Vec::new();
        let namespace = &self.namespace;
        for job in &mut self.jobs {
            if job.phase != JobPhase::Map || job.pending.is_empty() {
                continue;
            }
            let head: Vec<TaskId> = job.pending.iter().copied().take(head_cap).collect();
            let head_replica_less: Vec<bool> = head
                .iter()
                .map(|t| {
                    namespace
                        .block(job.tasks[t.0 as usize].block)
                        .locations
                        .is_empty()
                })
                .collect();
            let mut local_by_node = vec![Vec::new(); free_slots.len()];
            for (node_idx, &free) in free_slots.iter().enumerate() {
                if free == 0 {
                    continue;
                }
                // Lazily drop dispatched tasks from this node's index, then
                // expose enough local candidates to fill its slots.
                let list = &mut job.pending_by_node[node_idx];
                list.retain(|t| job.tasks[t.0 as usize].state == TaskState::Pending);
                local_by_node[node_idx] = list.iter().copied().take(free as usize + 4).collect();
            }
            sched_jobs.push(SchedJob {
                job: job.id,
                submit_seq: job.submit_seq,
                running: job.running,
                pending_total: job.pending.len() as u32,
                head,
                head_replica_less,
                local_by_node,
            });
        }
        if sched_jobs.is_empty() {
            return;
        }
        let view = SchedView {
            now: self.sim.now(),
            free_slots,
            jobs: sched_jobs,
        };
        let assignments = self.scheduler.assign(&view);
        #[cfg(debug_assertions)]
        {
            let mut free = view.free_slots.clone();
            let mut seen = HashSet::new();
            for a in &assignments {
                assert!(
                    free[a.node.0 as usize] > 0,
                    "scheduler over-assigned {:?}",
                    a.node
                );
                free[a.node.0 as usize] -= 1;
                assert!(seen.insert((a.job, a.task)), "duplicate assignment");
            }
        }
        // Data plane: submit every assigned task's map work (read + map +
        // combine + partition) to the worker pool in assignment order. The
        // handles are joined at each task's *simulated* completion, so the
        // event loop overlaps with host computation; results are pure
        // functions of the unit, so simulated state and event ordering are
        // identical at any thread count.
        for a in assignments {
            let unit = {
                let job = self.job(a.job);
                MapUnit {
                    input_format: std::sync::Arc::clone(&job.spec.input_format),
                    mapper: std::sync::Arc::clone(&job.spec.mapper),
                    combiner: job.spec.combiner.clone(),
                    block: job.tasks[a.task.0 as usize].block,
                    reduce_tasks: job.reduce_tasks,
                }
            };
            let handle = self.executor.submit(unit);
            self.dispatch(a.job, a.task, a.node, handle);
        }
    }

    fn dispatch(&mut self, id: JobId, task: TaskId, node: NodeId, handle: UnitHandle<MapTaskResult>) {
        let now = self.sim.now();
        let block = self.job(id).tasks[task.0 as usize].block;
        let local = self.namespace.is_local(block, node);
        // The map function's work is already queued on the data plane (see
        // `schedule_with`); its result is claimed when the modelled stages
        // complete.
        {
            let job = self.job_mut(id);
            let pos = job
                .pending
                .iter()
                .position(|&t| t == task)
                .expect("dispatched task must be pending");
            job.pending.remove(pos);
            let entry = &mut job.tasks[task.0 as usize];
            debug_assert_eq!(entry.state, TaskState::Pending);
            entry.state = TaskState::Running { node, local };
            entry.result = Some(handle);
            entry.attempts += 1;
            job.running += 1;
        }
        let n = &mut self.nodes[node.0 as usize];
        assert!(n.free_slots > 0, "dispatch to a full node");
        n.free_slots -= 1;
        self.metrics.slots_delta(now, 1.0);
        self.metrics.record_assignment(local);
        self.record(TraceKind::MapStarted {
            job: id,
            task,
            node,
            local,
        });
        self.sim.schedule_after(
            SimDuration::from_millis(self.cost.map_task_overhead_ms),
            Event::OverheadDone { job: id, task },
        );
    }

    fn on_overhead_done(&mut self, id: JobId, task: TaskId) {
        let now = self.sim.now();
        let (block, node, local) = {
            let entry = &self.job(id).tasks[task.0 as usize];
            let TaskState::Running { node, local } = entry.state else {
                panic!("overhead completed for a non-running task");
            };
            (entry.block, node, local)
        };
        let disk = if local {
            self.namespace
                .local_replica(block, node)
                .expect("local task has a local replica")
        } else {
            self.namespace.primary_replica(block)
        };
        let bytes = self.namespace.block(block).bytes as f64;
        let d = &mut self.disks[disk.0 as usize];
        let flow = d.res.add_flow(now, bytes);
        d.flows.insert(flow, (id, task));
        self.refresh_disk_wake(disk.0);
    }

    fn refresh_disk_wake(&mut self, disk: u32) {
        let now = self.sim.now();
        let d = &mut self.disks[disk as usize];
        if let Some(old) = d.wake.take() {
            self.sim.cancel(old);
        }
        if let Some(at) = d.res.next_completion(now) {
            d.wake = Some(self.sim.schedule_at(at, Event::DiskWake { disk }));
        }
    }

    fn on_disk_wake(&mut self, disk: u32) {
        let now = self.sim.now();
        self.disks[disk as usize].wake = None;
        self.disks[disk as usize].res.advance(now);
        let done = self.disks[disk as usize].res.take_completed();
        for flow in done {
            let (id, task) = self.disks[disk as usize]
                .flows
                .remove(&flow)
                .expect("completed flow is registered");
            let entry = &self.job(id).tasks[task.0 as usize];
            let TaskState::Running { local, .. } = entry.state else {
                panic!("disk read completed for a non-running task");
            };
            if local {
                self.start_cpu(id, task);
            } else {
                let bytes = self.namespace.block(entry.block).bytes;
                let transfer = self.cost.remote_transfer_ms(bytes);
                self.sim.schedule_after(
                    SimDuration::from_millis(transfer),
                    Event::NetworkDone { job: id, task },
                );
            }
        }
        self.refresh_disk_wake(disk);
    }

    fn start_cpu(&mut self, id: JobId, task: TaskId) {
        let now = self.sim.now();
        let entry = &self.job(id).tasks[task.0 as usize];
        let TaskState::Running { node, .. } = entry.state else {
            panic!("cpu stage for a non-running task");
        };
        let records = self.namespace.block(entry.block).records;
        let work = self.cost.map_cpu_work_us(records);
        let n = &mut self.nodes[node.0 as usize];
        let flow = n.cpu.add_flow(now, work);
        n.cpu_flows.insert(flow, (id, task));
        self.refresh_cpu_wake(node.0);
    }

    fn refresh_cpu_wake(&mut self, node: u16) {
        let now = self.sim.now();
        let n = &mut self.nodes[node as usize];
        if let Some(old) = n.cpu_wake.take() {
            self.sim.cancel(old);
        }
        if let Some(at) = n.cpu.next_completion(now) {
            n.cpu_wake = Some(self.sim.schedule_at(at, Event::CpuWake { node }));
        }
    }

    fn on_cpu_wake(&mut self, node: u16) {
        let now = self.sim.now();
        self.nodes[node as usize].cpu_wake = None;
        self.nodes[node as usize].cpu.advance(now);
        let done = self.nodes[node as usize].cpu.take_completed();
        for flow in done {
            let (id, task) = self.nodes[node as usize]
                .cpu_flows
                .remove(&flow)
                .expect("completed cpu flow is registered");
            self.finish_map_task(id, task);
        }
        self.refresh_cpu_wake(node);
    }

    fn finish_map_task(&mut self, id: JobId, task: TaskId) {
        let now = self.sim.now();
        // Fault injection: decide whether this attempt fails before its
        // results are applied.
        if let Some((plan, rng)) = &mut self.faults {
            use rand::Rng;
            if rng.gen_range(0.0..1.0) < plan.probability {
                let max = plan.max_attempts;
                self.fail_map_attempt(id, task, max);
                return;
            }
        }
        let (node, local, handle) = {
            let job = self.job_mut(id);
            let entry = &mut job.tasks[task.0 as usize];
            let TaskState::Running { node, local } = entry.state else {
                panic!("finishing a non-running task");
            };
            entry.state = TaskState::Done;
            (
                node,
                local,
                entry.result.take().expect("work submitted at dispatch"),
            )
        };
        if self.job(id).phase == JobPhase::Done {
            // The job already failed; late attempts just release their slot
            // (dropping the handle — nobody wants the result).
            self.nodes[node.0 as usize].free_slots += 1;
            self.metrics.slots_delta(now, -1.0);
            return;
        }
        // Claim the data-plane result (blocks only if a worker is still on
        // it) and merge its pre-partitioned output into the per-reduce
        // shuffle buffers — the streaming half of the shuffle.
        let result = handle.join();
        self.metrics.add_host_map_ns(result.host_ns);
        let merge_start = std::time::Instant::now();
        {
            let job = self.job_mut(id);
            job.running -= 1;
            job.completed += 1;
            job.records_processed += result.records_read;
            job.map_output_records += result.total_outputs();
            job.shuffle_bytes += result.total_output_bytes();
            job.combiner_input_records += result.combiner_input_records;
            job.combiner_output_records += result.combiner_output_records;
            if local {
                job.local_tasks += 1;
            }
            job.shuffle.merge(result.pairs);
        }
        self.metrics
            .add_host_shuffle_merge_ns(merge_start.elapsed().as_nanos() as u64);
        self.nodes[node.0 as usize].free_slots += 1;
        self.metrics.slots_delta(now, -1.0);
        self.record(TraceKind::MapFinished { job: id, task });
        self.maybe_begin_reduce(id);
        // Note: no scheduling here. As in Hadoop, freed slots are re-assigned
        // at the next TaskTracker heartbeat, so slots are observably free in
        // between — which is what lets Input Providers ever see `AS > 0` on
        // a busy cluster.
    }

    /// A map attempt failed: release its slot, and either requeue the task
    /// or — past the attempt limit — fail the whole job.
    fn fail_map_attempt(&mut self, id: JobId, task: TaskId, max_attempts: u32) {
        let now = self.sim.now();
        let (node, attempts, block) = {
            let job = self.job_mut(id);
            let entry = &mut job.tasks[task.0 as usize];
            let TaskState::Running { node, .. } = entry.state else {
                panic!("failing a non-running task");
            };
            entry.state = TaskState::Pending;
            entry.result = None;
            (node, entry.attempts, entry.block)
        };
        self.nodes[node.0 as usize].free_slots += 1;
        self.metrics.slots_delta(now, -1.0);
        self.record(TraceKind::MapFailed {
            job: id,
            task,
            attempt: attempts,
        });
        if self.job(id).phase == JobPhase::Done {
            return; // job already failed; nothing more to do
        }
        let replica_nodes: Vec<NodeId> = self
            .namespace
            .block(block)
            .locations
            .iter()
            .map(|&d| self.namespace.topology().node_of(d))
            .collect();
        let job = self.job_mut(id);
        job.running -= 1;
        job.task_failures += 1;
        if attempts >= max_attempts {
            self.fail_job(id);
            return;
        }
        // Requeue for another attempt (back of the queue, like Hadoop).
        job.pending.push(task);
        for n in replica_nodes {
            job.pending_by_node[n.0 as usize].push(task);
        }
    }

    fn fail_job(&mut self, id: JobId) {
        let now = self.sim.now();
        let job = self.job_mut(id);
        debug_assert!(job.phase != JobPhase::Done);
        job.phase = JobPhase::Done;
        // Drop any shuffle state already buffered; late attempts see the
        // Done phase and never merge.
        job.shuffle = ShuffleState::default();
        job.result = Some(JobResult {
            job: id,
            submit_time: job.submit_time,
            finish_time: now,
            splits_processed: job.completed,
            records_processed: job.records_processed,
            map_output_records: job.map_output_records,
            local_tasks: job.local_tasks,
            task_failures: job.task_failures,
            failed: true,
            output: Vec::new(),
        });
        self.record(TraceKind::JobCompleted {
            job: id,
            failed: true,
        });
        self.active_jobs -= 1;
        self.completed.push_back(id);
    }

    /// Transition to the reduce phase once end-of-input is declared and
    /// every scheduled map has finished.
    ///
    /// The heavy lifting already happened: map output was partitioned on
    /// the data-plane workers and merged into the per-reduce buffers at
    /// each map's completion (`finish_map_task`). This step only spreads
    /// the unmaterialised remainder across partitions, records skew
    /// statistics, and queues the reduce tasks — O(`reduce_tasks`), no
    /// map-output pair is visited.
    fn maybe_begin_reduce(&mut self, id: JobId) {
        let job = self.job(id);
        if job.phase != JobPhase::Map
            || !job.end_of_input
            || job.running > 0
            || !job.pending.is_empty()
        {
            return;
        }
        let job = self.job_mut(id);
        job.phase = JobPhase::Reduce;
        let r = job.reduce_tasks;
        let buffers = std::mem::take(&mut job.shuffle).into_buffers();
        debug_assert_eq!(buffers.len(), r as usize);
        let mut reduces: Vec<ReduceEntry> = buffers
            .into_iter()
            .map(|buffer| ReduceEntry {
                state: ReduceState::Pending,
                buffer,
                pending: None,
                output: Vec::new(),
            })
            .collect();
        // Unmaterialised output (counts/bytes only) spreads evenly.
        let materialized_bytes: u64 = reduces.iter().map(|e| e.buffer.shuffle_bytes).sum();
        let materialized_records: u64 = reduces.iter().map(|e| e.buffer.input_records).sum();
        let extra_bytes = job.shuffle_bytes.saturating_sub(materialized_bytes);
        let extra_records = job.map_output_records.saturating_sub(materialized_records);
        for (i, entry) in reduces.iter_mut().enumerate() {
            let i = i as u64;
            entry.buffer.shuffle_bytes +=
                extra_bytes / r as u64 + u64::from(i < extra_bytes % r as u64);
            entry.buffer.input_records +=
                extra_records / r as u64 + u64::from(i < extra_records % r as u64);
        }
        let max_partition_bytes = reduces
            .iter()
            .map(|e| e.buffer.shuffle_bytes)
            .max()
            .unwrap_or(0);
        let min_partition_bytes = reduces
            .iter()
            .map(|e| e.buffer.shuffle_bytes)
            .min()
            .unwrap_or(0);
        let combiner_in = job.combiner_input_records;
        let combiner_out = job.combiner_output_records;
        job.reduces = reduces;
        self.metrics.record_shuffle(
            combiner_in,
            combiner_out,
            max_partition_bytes,
            min_partition_bytes,
        );
        self.record(TraceKind::ShuffleReady {
            job: id,
            partitions: r,
            combiner_in,
            combiner_out,
            max_partition_bytes,
            min_partition_bytes,
        });
        for i in 0..r {
            self.pending_reduces.push_back((id, i));
        }
    }

    /// Offer one reduce launch on `node` (one per heartbeat, like maps in
    /// stock Hadoop). Reduce placement is not locality-sensitive — inputs
    /// arrive over the network from every mapper anyway.
    fn assign_reduce(&mut self, node: u16) {
        if self.nodes[node as usize].free_reduce_slots == 0 {
            return;
        }
        let Some((id, r)) = self.pending_reduces.pop_front() else {
            return;
        };
        self.nodes[node as usize].free_reduce_slots -= 1;
        let cost = self.cost;
        // Submit the partition's record work (the user reducer over its
        // groups) to the data plane now; the simulated duration below
        // models the same work, so the handle is ripe by `ReduceDone`.
        let (duration, unit) = {
            let job = self.job_mut(id);
            let reducer = std::sync::Arc::clone(&job.spec.reducer);
            let entry = &mut job.reduces[r as usize];
            debug_assert_eq!(entry.state, ReduceState::Pending);
            entry.state = ReduceState::Running { node: NodeId(node) };
            let duration = cost.reduce_duration_ms(entry.buffer.shuffle_bytes, entry.buffer.input_records);
            let unit = ReduceUnit {
                reducer,
                key_order: std::mem::take(&mut entry.buffer.key_order),
                groups: std::mem::take(&mut entry.buffer.groups),
            };
            (duration, unit)
        };
        let handle = self.executor.submit(unit);
        self.job_mut(id).reduces[r as usize].pending = Some(handle);
        self.record(TraceKind::ReduceStarted {
            job: id,
            reduce: r,
            node: NodeId(node),
        });
        self.sim.schedule_after(
            SimDuration::from_millis(duration),
            Event::ReduceDone { job: id, reduce: r },
        );
    }

    fn on_reduce_done(&mut self, id: JobId, r: u32) {
        let now = self.sim.now();
        // Claim the data-plane result (the user reducer ran on a worker,
        // submitted at slot assignment).
        let (node, handle) = {
            let job = self.job_mut(id);
            let entry = &mut job.reduces[r as usize];
            let ReduceState::Running { node } = entry.state else {
                panic!("reduce completed while not running");
            };
            (
                node,
                entry.pending.take().expect("reduce submitted at assignment"),
            )
        };
        let result = handle.join();
        self.metrics.add_host_reduce_ns(result.host_ns);
        self.nodes[node.0 as usize].free_reduce_slots += 1;
        let job = self.job_mut(id);
        let entry = &mut job.reduces[r as usize];
        entry.state = ReduceState::Done;
        entry.output = result.output;
        job.reduces_done += 1;
        let all_done = job.reduces_done == job.reduce_tasks;
        self.record(TraceKind::ReduceFinished { job: id, reduce: r });
        if all_done {
            self.finalize_job(id, now);
        }
    }

    fn finalize_job(&mut self, id: JobId, now: SimTime) {
        let job = self.job_mut(id);
        job.phase = JobPhase::Done;
        let output: Vec<(Key, Record)> = job
            .reduces
            .iter_mut()
            .flat_map(|e| std::mem::take(&mut e.output))
            .collect();
        job.result = Some(JobResult {
            job: id,
            submit_time: job.submit_time,
            finish_time: now,
            splits_processed: job.completed,
            records_processed: job.records_processed,
            map_output_records: job.map_output_records,
            local_tasks: job.local_tasks,
            task_failures: job.task_failures,
            failed: false,
            output,
        });
        self.record(TraceKind::JobCompleted {
            job: id,
            failed: false,
        });
        self.active_jobs -= 1;
        self.completed.push_back(id);
    }
}

/// Convenience: read the configured sample size `k` from a job's conf.
pub fn sample_size_of(conf: &crate::conf::JobConf) -> Option<u64> {
    conf.get(keys::SAMPLING_K).and_then(|v| v.parse().ok())
}
