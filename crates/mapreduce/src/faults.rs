//! The cluster-level fault model: node outages, stragglers, per-attempt
//! faults, speculative execution, and blacklisting — configuration and the
//! pure decision logic, all deterministic.
//!
//! Real Hadoop clusters lose TaskTrackers, host slow disks and hot CPUs,
//! and re-execute work; the paper's Input Providers observe cluster
//! statistics shaped by exactly those effects. This module defines the
//! simulated counterparts:
//!
//! * [`FaultPlan`] — per-map-attempt failure injection (the original fault
//!   knob, kept for narrow tests);
//! * [`ClusterFaultPlan`] — the full model: [`NodeOutage`] schedules
//!   (TaskTracker death and rejoin on simulated time), per-node speed
//!   factors (stragglers), separate map and reduce attempt fault
//!   probabilities, [`SpeculationConfig`], and a per-job blacklist
//!   threshold;
//! * [`FaultConfigError`] — typed validation, replacing the old
//!   `assert!`-at-submit checks.
//!
//! Everything here is configuration plus pure functions; the runtime
//! ([`crate::MrRuntime::inject_cluster_faults`]) owns the state machine.
//! See DESIGN.md §8 for the Hadoop semantics preserved and the shuffle
//! rules that keep results fault-schedule-invariant.

use std::fmt;

use incmr_dfs::NodeId;
use incmr_simkit::SimTime;

/// Fault-injection configuration: each map-task attempt fails with
/// `probability`, and a task that fails `max_attempts` times fails its job
/// (Hadoop's `mapred.map.max.attempts` semantics, default 4).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Per-attempt failure probability in `[0, 1)`.
    pub probability: f64,
    /// Attempts allowed per task before the job is failed.
    pub max_attempts: u32,
    /// Seed for the (deterministic) failure draws.
    pub seed: u64,
}

impl FaultPlan {
    /// Check the plan's parameters, returning a typed error instead of
    /// panicking (the old `assert!`-based validation).
    pub fn validate(&self) -> Result<(), FaultConfigError> {
        if !(0.0..1.0).contains(&self.probability) {
            return Err(FaultConfigError::Probability {
                what: "map attempt fault",
                value: self.probability,
            });
        }
        if self.max_attempts == 0 {
            return Err(FaultConfigError::ZeroMaxAttempts);
        }
        Ok(())
    }
}

/// One scheduled TaskTracker outage: the node dies at `down_at` (killing
/// every attempt it hosts and stranding the map output it stored) and
/// optionally rejoins at `up_at` with full slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeOutage {
    /// The node that goes down.
    pub node: NodeId,
    /// Simulated instant of death.
    pub down_at: SimTime,
    /// Simulated instant of rejoin (`None` = stays dead).
    pub up_at: Option<SimTime>,
}

/// When to launch a speculative attempt for a laggard map task (Hadoop's
/// speculative execution, `mapred.map.tasks.speculative.execution`).
#[derive(Debug, Clone, Copy)]
pub struct SpeculationConfig {
    /// An attempt is a laggard once its age exceeds `slowdown_threshold ×`
    /// the mean duration of the job's completed maps.
    pub slowdown_threshold: f64,
    /// Completed maps required before the mean is trusted.
    pub min_completed: u32,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        // Hadoop flags a task whose progress trails the average by more
        // than 20%; with uniform splits that is an age threshold.
        SpeculationConfig {
            slowdown_threshold: 1.2,
            min_completed: 3,
        }
    }
}

/// The full cluster fault model, injected once per runtime before any job
/// is submitted ([`crate::MrRuntime::inject_cluster_faults`]).
#[derive(Debug, Clone, Default)]
pub struct ClusterFaultPlan {
    /// Scheduled node deaths and rejoins, on simulated time.
    pub outages: Vec<NodeOutage>,
    /// Per-node CPU speed factors in `(0, 1]`, indexed by `NodeId.0`
    /// (missing entries default to 1.0). A 0.5 node computes map records
    /// at half speed — the straggler knob.
    pub node_speed: Vec<f64>,
    /// Per-map-attempt failure probability in `[0, 1)`.
    pub map_fault_probability: f64,
    /// Per-reduce-attempt failure probability in `[0, 1)`.
    pub reduce_fault_probability: f64,
    /// Counted failures allowed per task before its job fails (killed
    /// attempts — node death, speculation losers — do not count, matching
    /// Hadoop's failed-vs-killed distinction). `0` means the Hadoop
    /// default of 4.
    pub max_attempts: u32,
    /// Speculative execution of laggard map attempts; `None` disables it.
    pub speculation: Option<SpeculationConfig>,
    /// Counted failures on one node before a job blacklists that node
    /// (Hadoop's `mapred.max.tracker.failures`, default 4); `None`
    /// disables blacklisting.
    pub blacklist_threshold: Option<u32>,
    /// Seed for the fault draws (map and reduce streams are forked from
    /// it independently).
    pub seed: u64,
}

impl ClusterFaultPlan {
    /// The attempt budget with the Hadoop default applied.
    pub fn effective_max_attempts(&self) -> u32 {
        if self.max_attempts == 0 {
            4
        } else {
            self.max_attempts
        }
    }

    /// Check the plan against a cluster of `num_nodes` nodes.
    pub fn validate(&self, num_nodes: usize) -> Result<(), FaultConfigError> {
        if !(0.0..1.0).contains(&self.map_fault_probability) {
            return Err(FaultConfigError::Probability {
                what: "map attempt fault",
                value: self.map_fault_probability,
            });
        }
        if !(0.0..1.0).contains(&self.reduce_fault_probability) {
            return Err(FaultConfigError::Probability {
                what: "reduce attempt fault",
                value: self.reduce_fault_probability,
            });
        }
        for outage in &self.outages {
            if outage.node.0 as usize >= num_nodes {
                return Err(FaultConfigError::UnknownNode { node: outage.node });
            }
            if let Some(up) = outage.up_at {
                if up <= outage.down_at {
                    return Err(FaultConfigError::RejoinBeforeDeath { node: outage.node });
                }
            }
        }
        if self.node_speed.len() > num_nodes {
            return Err(FaultConfigError::UnknownNode {
                node: NodeId(num_nodes as u16),
            });
        }
        for (i, &speed) in self.node_speed.iter().enumerate() {
            if !(speed > 0.0 && speed <= 1.0) {
                return Err(FaultConfigError::Speed {
                    node: NodeId(i as u16),
                    value: speed,
                });
            }
        }
        if let Some(spec) = &self.speculation {
            // NaN must be rejected too, hence the explicit partial_cmp.
            if spec.slowdown_threshold.partial_cmp(&1.0) != Some(std::cmp::Ordering::Greater) {
                return Err(FaultConfigError::SpeculationThreshold {
                    value: spec.slowdown_threshold,
                });
            }
        }
        if self.blacklist_threshold == Some(0) {
            return Err(FaultConfigError::ZeroBlacklistThreshold);
        }
        Ok(())
    }
}

/// A rejected fault configuration: which knob is out of range and why.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultConfigError {
    /// A probability outside `[0, 1)`.
    Probability {
        /// Which probability knob.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `max_attempts` of zero on a [`FaultPlan`] (every attempt would
    /// immediately exhaust the budget).
    ZeroMaxAttempts,
    /// An outage or speed entry referencing a node outside the topology.
    UnknownNode {
        /// The out-of-range node.
        node: NodeId,
    },
    /// An outage whose rejoin is not after its death.
    RejoinBeforeDeath {
        /// The node with the inverted schedule.
        node: NodeId,
    },
    /// A speed factor outside `(0, 1]`.
    Speed {
        /// The node with the bad factor.
        node: NodeId,
        /// The rejected value.
        value: f64,
    },
    /// A speculation slowdown threshold not above 1.0 (would speculate
    /// every attempt immediately).
    SpeculationThreshold {
        /// The rejected value.
        value: f64,
    },
    /// A blacklist threshold of zero (every node banned up front).
    ZeroBlacklistThreshold,
    /// A re-replication interval of zero (the repair tick would spin the
    /// event loop without advancing simulated time).
    ZeroRepairInterval,
}

impl fmt::Display for FaultConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultConfigError::Probability { what, value } => {
                write!(f, "{what} probability {value} is outside [0, 1)")
            }
            FaultConfigError::ZeroMaxAttempts => {
                write!(f, "max_attempts must be at least 1")
            }
            FaultConfigError::UnknownNode { node } => {
                write!(f, "{node} is outside the cluster topology")
            }
            FaultConfigError::RejoinBeforeDeath { node } => {
                write!(f, "{node} rejoins before (or at) its death")
            }
            FaultConfigError::Speed { node, value } => {
                write!(f, "{node} speed factor {value} is outside (0, 1]")
            }
            FaultConfigError::SpeculationThreshold { value } => {
                write!(f, "speculation slowdown threshold {value} must exceed 1.0")
            }
            FaultConfigError::ZeroBlacklistThreshold => {
                write!(f, "blacklist threshold must be at least 1")
            }
            FaultConfigError::ZeroRepairInterval => {
                write!(f, "re-replication interval must be positive")
            }
        }
    }
}

impl std::error::Error for FaultConfigError {}

/// Scheduler-agnostic view of one unfinished map task, as fed to
/// [`pick_speculative`].
#[derive(Debug, Clone, Copy)]
pub struct SpecCandidate {
    /// The task's id within its job.
    pub task: u32,
    /// Attempts currently in flight (0 = queued, waiting for a slot).
    pub attempts_in_flight: u32,
    /// Whether one of those attempts is already speculative.
    pub speculative_in_flight: bool,
    /// When the oldest in-flight attempt started.
    pub started: SimTime,
}

/// Choose at most one laggard task to speculate, or `None`.
///
/// Hadoop semantics: a speculative attempt launches only when the job has
/// no pending (queued) tasks, enough maps have completed to trust the mean
/// duration, and exactly one attempt of the candidate is in flight — so at
/// most one speculative attempt per task ever runs. Ties break on the
/// lowest task id for determinism. The scheduler-level invariants are
/// proptested in `scheduler/proptests.rs`.
pub fn pick_speculative(
    candidates: &[SpecCandidate],
    now: SimTime,
    mean_completed_ms: f64,
    completed: u32,
    cfg: &SpeculationConfig,
) -> Option<u32> {
    if completed < cfg.min_completed || mean_completed_ms <= 0.0 {
        return None;
    }
    let threshold_ms = cfg.slowdown_threshold * mean_completed_ms;
    candidates
        .iter()
        .filter(|c| {
            c.attempts_in_flight == 1
                && !c.speculative_in_flight
                && (now - c.started).as_millis() as f64 > threshold_ms
        })
        .map(|c| c.task)
        .min()
}

/// Scan an exported trace for speculative races that never resolved.
///
/// Every `SpeculativeLaunch` must be followed by either an `AttemptKilled`
/// on the same task (one racer lost) or the task's `MapFinished` commit;
/// a job that fails mid-race tears its attempts down without further
/// events, so `JobCompleted` also settles that job's races. Returns the
/// `(job, task)` pairs still open at the end of the trace — an empty
/// result is the invariant the chaos suite asserts.
pub fn unresolved_speculations(
    events: &[crate::trace::TraceEvent],
) -> Vec<(crate::job::JobId, crate::job::TaskId)> {
    use crate::trace::TraceKind;
    let mut open: Vec<(crate::job::JobId, crate::job::TaskId)> = Vec::new();
    for e in events {
        match e.kind {
            TraceKind::SpeculativeLaunch { job, task, .. } if !open.contains(&(job, task)) => {
                open.push((job, task));
            }
            TraceKind::AttemptKilled { job, task, .. } | TraceKind::MapFinished { job, task } => {
                open.retain(|&(j, t)| (j, t) != (job, task));
            }
            TraceKind::JobCompleted { job, .. } => {
                open.retain(|&(j, _)| j != job);
            }
            _ => {}
        }
    }
    open
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_plan() -> ClusterFaultPlan {
        ClusterFaultPlan {
            outages: vec![NodeOutage {
                node: NodeId(2),
                down_at: SimTime::from_secs(30),
                up_at: Some(SimTime::from_secs(90)),
            }],
            node_speed: vec![1.0, 0.5],
            map_fault_probability: 0.1,
            reduce_fault_probability: 0.05,
            max_attempts: 4,
            speculation: Some(SpeculationConfig::default()),
            blacklist_threshold: Some(3),
            seed: 7,
        }
    }

    #[test]
    fn speculation_pairing_scans_the_trace() {
        use crate::job::{JobId, TaskId};
        use crate::trace::{TraceEvent, TraceKind};
        let at = |s: u64, kind: TraceKind| TraceEvent {
            time: SimTime::from_secs(s),
            kind,
        };
        let launch = |j: u32, t: u32| TraceKind::SpeculativeLaunch {
            job: JobId(j),
            task: TaskId(t),
            node: NodeId(0),
        };
        // Race 1 resolves by a kill, race 2 by its commit, race 3 by the
        // job failing mid-race; race 4 stays open.
        let events = vec![
            at(1, launch(0, 1)),
            at(2, launch(0, 2)),
            at(3, launch(1, 3)),
            at(4, launch(0, 4)),
            at(
                5,
                TraceKind::AttemptKilled {
                    job: JobId(0),
                    task: TaskId(1),
                    node: NodeId(0),
                },
            ),
            at(
                6,
                TraceKind::MapFinished {
                    job: JobId(0),
                    task: TaskId(2),
                },
            ),
            at(
                7,
                TraceKind::JobCompleted {
                    job: JobId(1),
                    failed: true,
                },
            ),
        ];
        assert_eq!(
            unresolved_speculations(&events),
            vec![(JobId(0), TaskId(4))]
        );
        assert!(unresolved_speculations(&events[..3]).len() == 3);
    }

    #[test]
    fn valid_plan_passes() {
        assert_eq!(ok_plan().validate(10), Ok(()));
        assert_eq!(ClusterFaultPlan::default().validate(10), Ok(()));
    }

    #[test]
    fn default_max_attempts_is_hadoops_four() {
        assert_eq!(ClusterFaultPlan::default().effective_max_attempts(), 4);
        assert_eq!(ok_plan().effective_max_attempts(), 4);
    }

    #[test]
    fn probabilities_outside_unit_interval_are_rejected() {
        let mut p = ok_plan();
        p.map_fault_probability = 1.0;
        assert!(matches!(
            p.validate(10),
            Err(FaultConfigError::Probability {
                what: "map attempt fault",
                ..
            })
        ));
        let mut p = ok_plan();
        p.reduce_fault_probability = -0.1;
        assert!(matches!(
            p.validate(10),
            Err(FaultConfigError::Probability {
                what: "reduce attempt fault",
                ..
            })
        ));
    }

    #[test]
    fn outage_on_unknown_node_is_rejected() {
        let mut p = ok_plan();
        p.outages[0].node = NodeId(10);
        assert_eq!(
            p.validate(10),
            Err(FaultConfigError::UnknownNode { node: NodeId(10) })
        );
    }

    #[test]
    fn rejoin_must_follow_death() {
        let mut p = ok_plan();
        p.outages[0].up_at = Some(p.outages[0].down_at);
        assert_eq!(
            p.validate(10),
            Err(FaultConfigError::RejoinBeforeDeath { node: NodeId(2) })
        );
    }

    #[test]
    fn speed_factors_must_be_positive_and_at_most_one() {
        for bad in [0.0, -1.0, 1.5] {
            let mut p = ok_plan();
            p.node_speed = vec![bad];
            assert!(matches!(
                p.validate(10),
                Err(FaultConfigError::Speed { .. })
            ));
        }
        let mut p = ok_plan();
        p.node_speed = vec![1.0; 11];
        assert!(matches!(
            p.validate(10),
            Err(FaultConfigError::UnknownNode { .. })
        ));
    }

    #[test]
    fn degenerate_speculation_and_blacklist_are_rejected() {
        let mut p = ok_plan();
        p.speculation = Some(SpeculationConfig {
            slowdown_threshold: 1.0,
            min_completed: 3,
        });
        assert!(matches!(
            p.validate(10),
            Err(FaultConfigError::SpeculationThreshold { .. })
        ));
        let mut p = ok_plan();
        p.blacklist_threshold = Some(0);
        assert_eq!(
            p.validate(10),
            Err(FaultConfigError::ZeroBlacklistThreshold)
        );
    }

    #[test]
    fn fault_plan_validation_matches_old_asserts() {
        assert!(FaultPlan {
            probability: 0.5,
            max_attempts: 4,
            seed: 0
        }
        .validate()
        .is_ok());
        assert!(matches!(
            FaultPlan {
                probability: 1.0,
                max_attempts: 4,
                seed: 0
            }
            .validate(),
            Err(FaultConfigError::Probability { .. })
        ));
        assert_eq!(
            FaultPlan {
                probability: 0.0,
                max_attempts: 0,
                seed: 0
            }
            .validate(),
            Err(FaultConfigError::ZeroMaxAttempts)
        );
    }

    #[test]
    fn errors_render_their_knob() {
        let e = FaultConfigError::Speed {
            node: NodeId(3),
            value: 2.0,
        };
        assert!(e.to_string().contains("node3"));
        assert!(e.to_string().contains("2"));
    }

    fn cand(task: u32, in_flight: u32, spec: bool, started_s: u64) -> SpecCandidate {
        SpecCandidate {
            task,
            attempts_in_flight: in_flight,
            speculative_in_flight: spec,
            started: SimTime::from_secs(started_s),
        }
    }

    #[test]
    fn speculation_picks_the_lowest_laggard() {
        let cfg = SpeculationConfig {
            slowdown_threshold: 1.5,
            min_completed: 3,
        };
        let now = SimTime::from_secs(100);
        // Mean 20 s → threshold 30 s → attempts started before t=70 lag.
        let cands = [
            cand(5, 1, false, 60),
            cand(2, 1, false, 50),
            cand(7, 1, false, 90),
        ];
        assert_eq!(pick_speculative(&cands, now, 20_000.0, 5, &cfg), Some(2));
    }

    #[test]
    fn speculation_needs_completed_maps_and_a_mean() {
        let cfg = SpeculationConfig::default();
        let cands = [cand(0, 1, false, 0)];
        let now = SimTime::from_secs(1_000);
        assert_eq!(pick_speculative(&cands, now, 20_000.0, 2, &cfg), None);
        assert_eq!(pick_speculative(&cands, now, 0.0, 10, &cfg), None);
    }

    #[test]
    fn speculation_never_doubles_up() {
        let cfg = SpeculationConfig {
            slowdown_threshold: 1.2,
            min_completed: 1,
        };
        let now = SimTime::from_secs(500);
        // Already speculating, already dual-attempt, or queued: all skipped.
        let cands = [
            cand(0, 1, true, 0),
            cand(1, 2, true, 0),
            cand(2, 0, false, 0),
        ];
        assert_eq!(pick_speculative(&cands, now, 1_000.0, 4, &cfg), None);
    }
}
