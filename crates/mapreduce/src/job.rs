//! Job-level public types: identifiers, specs, progress reports, growth
//! drivers, and results.
//!
//! The key extension over stock Hadoop is the [`GrowthDriver`] hook — the
//! runtime-side half of the paper's *Input Provider* mechanism (Section
//! III-A). A job is submitted together with a driver; the driver supplies
//! the initial splits and is then re-evaluated at its chosen interval until
//! it declares end-of-input. Stock Hadoop behaviour ("all input up front")
//! is the trivial [`StaticDriver`].

use std::fmt;
use std::sync::Arc;

use incmr_dfs::BlockId;
use incmr_simkit::SimDuration;

use crate::cluster::ClusterStatus;
use crate::conf::{keys, ConfError, JobConf};
use crate::exec::{Combiner, IdentityReducer, InputFormat, Key, Mapper, Reducer};
use incmr_data::Record;

/// Identifier of a submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u32);

/// Identifier of a map task within its job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job_{:04}", self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m_{:06}", self.0)
    }
}

/// Everything needed to run a job: configuration plus the user's black-box
/// logic. Cloning is cheap (shared `Arc`s); the `Arc`s make the spec
/// `Send + Sync` so map work can run on the data-plane worker pool.
///
/// Construct specs with [`JobSpec::builder`] rather than struct literals —
/// the builder defaults the configuration and reducer and keeps call sites
/// stable as fields are added.
#[derive(Clone)]
pub struct JobSpec {
    /// Job configuration.
    pub conf: JobConf,
    /// Source of split contents.
    pub input_format: Arc<dyn InputFormat>,
    /// Map logic.
    pub mapper: Arc<dyn Mapper>,
    /// Optional map-side aggregation (Hadoop's combiner), applied to each
    /// map task's output on the data plane before partitioning.
    pub combiner: Option<Arc<dyn Combiner>>,
    /// Reduce logic.
    pub reducer: Arc<dyn Reducer>,
}

impl JobSpec {
    /// Start building a job spec. Input format and mapper are mandatory;
    /// the configuration defaults to empty, the combiner to none, and the
    /// reducer to [`IdentityReducer`].
    pub fn builder() -> JobSpecBuilder {
        JobSpecBuilder {
            conf: JobConf::new(),
            input_format: None,
            mapper: None,
            combiner: None,
            reducer: Arc::new(IdentityReducer),
        }
    }
}

/// Builder for [`JobSpec`] (see [`JobSpec::builder`]).
pub struct JobSpecBuilder {
    conf: JobConf,
    input_format: Option<Arc<dyn InputFormat>>,
    mapper: Option<Arc<dyn Mapper>>,
    combiner: Option<Arc<dyn Combiner>>,
    reducer: Arc<dyn Reducer>,
}

impl JobSpecBuilder {
    /// Replace the whole configuration (defaults to empty).
    pub fn conf(mut self, conf: JobConf) -> Self {
        self.conf = conf;
        self
    }

    /// Set one configuration key (applied on top of [`JobSpecBuilder::conf`]).
    pub fn set(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.conf.set(key, value);
        self
    }

    /// Source of split contents (mandatory).
    pub fn input(mut self, input_format: impl InputFormat + 'static) -> Self {
        self.input_format = Some(Arc::new(input_format));
        self
    }

    /// Source of split contents from an existing shared handle.
    pub fn input_arc(mut self, input_format: Arc<dyn InputFormat>) -> Self {
        self.input_format = Some(input_format);
        self
    }

    /// Map logic (mandatory).
    pub fn mapper(mut self, mapper: impl Mapper + 'static) -> Self {
        self.mapper = Some(Arc::new(mapper));
        self
    }

    /// Map logic from an existing shared handle.
    pub fn mapper_arc(mut self, mapper: Arc<dyn Mapper>) -> Self {
        self.mapper = Some(mapper);
        self
    }

    /// Map-side combiner (defaults to none). Also records the combiner
    /// under [`keys::COMBINER_CLASS`] for observability, mirroring
    /// Hadoop's `mapred.combiner.class`.
    pub fn combiner(mut self, combiner: impl Combiner + 'static) -> Self {
        self.conf
            .set(keys::COMBINER_CLASS, std::any::type_name_of_val(&combiner));
        self.combiner = Some(Arc::new(combiner));
        self
    }

    /// Reduce logic (defaults to [`IdentityReducer`]).
    pub fn reducer(mut self, reducer: impl Reducer + 'static) -> Self {
        self.reducer = Arc::new(reducer);
        self
    }

    /// Number of reduce tasks (sets [`keys::NUM_REDUCE_TASKS`]).
    pub fn reduces(mut self, n: u32) -> Self {
        self.conf.set(keys::NUM_REDUCE_TASKS, n);
        self
    }

    /// How many recoverable Input Provider failures (caught panics,
    /// invalid directives) the job absorbs before failing — each one is
    /// treated as a `Wait` and the provider is re-consulted at the next
    /// evaluation (sets [`keys::PROVIDER_RETRY_BUDGET`]; default 0).
    pub fn provider_retry_budget(mut self, retries: u32) -> Self {
        self.conf.set(keys::PROVIDER_RETRY_BUDGET, retries);
        self
    }

    /// Livelock watchdog threshold: consecutive unproductive evaluations
    /// (no new splits, nothing running or pending) before the job is
    /// failed as wedged. `0` disables the watchdog (sets
    /// [`keys::MAX_IDLE_EVALUATIONS`]; the runtime defaults to
    /// `crate::runtime::DEFAULT_MAX_IDLE_EVALUATIONS`).
    pub fn max_idle_evaluations(mut self, evaluations: u32) -> Self {
        self.conf.set(keys::MAX_IDLE_EVALUATIONS, evaluations);
        self
    }

    /// Simulated-time deadline, measured from submission. On expiry the
    /// job fails with `JobError::DeadlineExceeded`, or degrades to its
    /// partial output under [`JobSpecBuilder::allow_partial`] (sets
    /// [`keys::JOB_DEADLINE_MS`]; must be nonzero).
    pub fn deadline(mut self, deadline: SimDuration) -> Self {
        self.conf.set(keys::JOB_DEADLINE_MS, deadline.as_millis());
        self
    }

    /// On deadline expiry, stop growing, abandon unstarted splits, and
    /// complete with the output gathered so far instead of failing (sets
    /// [`keys::ALLOW_PARTIAL`]).
    pub fn allow_partial(mut self, allow: bool) -> Self {
        self.conf.set(keys::ALLOW_PARTIAL, allow);
        self
    }

    /// Target replica count for the job's input dataset (sets
    /// [`keys::DFS_REPLICATION`]; must be nonzero). Informational at the
    /// job level — placement happens when the dataset is built.
    pub fn replication(mut self, r: u8) -> Self {
        self.conf.set(keys::DFS_REPLICATION, r);
        self
    }

    /// Trace sink to enable at submission: `"memory"` (buffered events,
    /// the `enable_tracing` behaviour) or `"jsonl"` (eager JSONL text).
    /// Any other value is rejected at build/submit time (sets
    /// [`keys::TRACE_SINK`]).
    pub fn trace_sink(mut self, sink: &str) -> Self {
        self.conf.set(keys::TRACE_SINK, sink);
        self
    }

    /// Whether this job's latencies feed the runtime's histogram
    /// `MetricsRegistry` (default true; sets [`keys::HISTOGRAM_ENABLED`]).
    pub fn histograms(mut self, enabled: bool) -> Self {
        self.conf.set(keys::HISTOGRAM_ENABLED, enabled);
        self
    }

    /// Error-bounded approximate aggregation: grow the job only until the
    /// relative error bound `error` holds at `confidence` for every group
    /// and aggregate (sets [`keys::AGG_ERROR`] and
    /// [`keys::AGG_CONFIDENCE`]; both must lie strictly inside (0, 1)).
    /// An estimating spec also needs [`keys::AGG_FUNCS`] and
    /// [`keys::AGG_TOTAL_SPLITS`], which the query compiler writes.
    pub fn error_bound(mut self, error: f64, confidence: f64) -> Self {
        self.conf.set(keys::AGG_ERROR, error);
        self.conf.set(keys::AGG_CONFIDENCE, confidence);
        self
    }

    /// Growth-round budget for an estimating aggregate job: how many
    /// input-drawing rounds the provider may spend before stopping with
    /// `AggOutcome::BudgetExhausted` (sets [`keys::AGG_ROUNDS`]; must be
    /// ≥ 1).
    pub fn agg_rounds(mut self, rounds: u64) -> Self {
        self.conf.set(keys::AGG_ROUNDS, rounds);
        self
    }

    /// Finish building, returning a typed error for incomplete or
    /// malformed specs: a missing input format or mapper, a numeric
    /// configuration key (reduce-task count, materialize cap, guard-rail
    /// knobs) that does not parse, or a zero deadline.
    pub fn try_build(self) -> Result<JobSpec, JobConfigError> {
        self.conf
            .get_u64_or(keys::NUM_REDUCE_TASKS, 1)
            .map_err(JobConfigError::BadConf)?;
        self.conf
            .get_u64_or(crate::runtime::MATERIALIZE_CAP_KEY, u64::MAX)
            .map_err(JobConfigError::BadConf)?;
        self.conf
            .get_u64_or(keys::PROVIDER_RETRY_BUDGET, 0)
            .map_err(JobConfigError::BadConf)?;
        self.conf
            .get_u64_or(keys::MAX_IDLE_EVALUATIONS, 0)
            .map_err(JobConfigError::BadConf)?;
        let deadline = self
            .conf
            .get_u64_or(keys::JOB_DEADLINE_MS, u64::MAX)
            .map_err(JobConfigError::BadConf)?;
        if deadline == 0 {
            return Err(JobConfigError::ZeroDeadline);
        }
        if let Some(sink) = self.conf.get(keys::TRACE_SINK) {
            if sink != "memory" && sink != "jsonl" {
                return Err(JobConfigError::BadConf(crate::conf::ConfError {
                    key: keys::TRACE_SINK.to_string(),
                    value: sink.to_string(),
                    wanted: "trace sink (\"memory\" or \"jsonl\")",
                }));
            }
        }
        if let Some(v) = self.conf.get(keys::DFS_REPLICATION) {
            if !matches!(v.parse::<u8>(), Ok(r) if r > 0) {
                return Err(JobConfigError::BadConf(crate::conf::ConfError {
                    key: keys::DFS_REPLICATION.to_string(),
                    value: v.to_string(),
                    wanted: "replication factor (1..=255)",
                }));
            }
        }
        crate::approx::agg_plan_of(&self.conf).map_err(JobConfigError::BadConf)?;
        Ok(JobSpec {
            conf: self.conf,
            input_format: self.input_format.ok_or(JobConfigError::MissingInput)?,
            mapper: self.mapper.ok_or(JobConfigError::MissingMapper)?,
            combiner: self.combiner,
            reducer: self.reducer,
        })
    }

    /// Finish building.
    ///
    /// # Panics
    /// Panics if the spec is incomplete or malformed — see
    /// [`JobSpecBuilder::try_build`] for the checked variant.
    pub fn build(self) -> JobSpec {
        match self.try_build() {
            Ok(spec) => spec,
            Err(JobConfigError::MissingInput) => panic!("JobSpec::builder requires .input(...)"),
            Err(JobConfigError::MissingMapper) => panic!("JobSpec::builder requires .mapper(...)"),
            Err(e) => panic!("invalid job configuration: {e}"),
        }
    }
}

/// A rejected job spec: what was missing or malformed at build time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobConfigError {
    /// No input format was supplied.
    MissingInput,
    /// No mapper was supplied.
    MissingMapper,
    /// A numeric configuration key failed to parse.
    BadConf(ConfError),
    /// A deadline of zero milliseconds was requested — it would expire at
    /// submission; omit the key to mean "no deadline".
    ZeroDeadline,
}

impl fmt::Display for JobConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobConfigError::MissingInput => write!(f, "job spec has no input format"),
            JobConfigError::MissingMapper => write!(f, "job spec has no mapper"),
            JobConfigError::BadConf(e) => write!(f, "{e}"),
            JobConfigError::ZeroDeadline => {
                write!(f, "job deadline must be nonzero (omit the key for none)")
            }
        }
    }
}

impl std::error::Error for JobConfigError {}

/// Which provider hook was running when a guard-rail fault was caught.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProviderStage {
    /// `initial_input`, at submission time.
    InitialInput,
    /// `evaluate` / `next_input`, at an evaluation.
    Evaluate,
}

impl fmt::Display for ProviderStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderStage::InitialInput => write!(f, "initial_input"),
            ProviderStage::Evaluate => write!(f, "evaluate"),
        }
    }
}

/// A misbehaving Input Provider or growth driver, caught by the runtime's
/// guard-rail plane instead of poisoning the event loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProviderError {
    /// The provider panicked; the sandbox caught it.
    Panicked {
        /// Which hook was running.
        stage: ProviderStage,
        /// The panic payload, when it was a string.
        message: String,
    },
    /// An `AddInput` directive named a block outside the namespace.
    UnknownBlock {
        /// The offending block id.
        block: BlockId,
    },
}

impl ProviderError {
    /// Build a `Panicked` error from a payload caught by
    /// `std::panic::catch_unwind`.
    pub fn from_panic(stage: ProviderStage, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            String::from("<non-string panic payload>")
        };
        ProviderError::Panicked { stage, message }
    }
}

impl fmt::Display for ProviderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProviderError::Panicked { stage, message } => {
                write!(f, "input provider panicked in {stage}: {message}")
            }
            ProviderError::UnknownBlock { block } => {
                write!(f, "input provider requested unknown {block}")
            }
        }
    }
}

impl std::error::Error for ProviderError {}

/// Why a job was aborted, recorded on its [`JobResult`]. `None` there
/// means the job completed (possibly with a partial sample — see
/// `TraceKind::PartialSample`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The Input Provider misbehaved past the retry budget.
    Provider(ProviderError),
    /// The livelock watchdog fired: too many consecutive unproductive
    /// evaluations with nothing running or pending.
    Wedged {
        /// Consecutive idle evaluations observed at termination.
        idle_evaluations: u32,
    },
    /// The job's simulated-time deadline expired without
    /// `mapred.job.allow.partial`.
    DeadlineExceeded,
    /// A map task exhausted its attempt budget.
    TaskAttemptsExhausted {
        /// The failing task.
        task: TaskId,
    },
    /// A reduce task exhausted its attempt budget.
    ReduceAttemptsExhausted {
        /// The failing reduce partition.
        reduce: u32,
    },
    /// Every node in the cluster is blacklisted for this job.
    AllNodesBlacklisted,
    /// Under DataNode-death semantics every replica of one or more of the
    /// job's input blocks was lost, and the job does not allow a partial
    /// result (`mapred.job.allow.partial`).
    InputLost {
        /// The unreadable blocks, in ascending id order.
        blocks: Vec<BlockId>,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Provider(e) => write!(f, "{e}"),
            JobError::Wedged { idle_evaluations } => {
                write!(f, "job wedged after {idle_evaluations} idle evaluations")
            }
            JobError::DeadlineExceeded => write!(f, "job deadline exceeded"),
            JobError::TaskAttemptsExhausted { task } => {
                write!(f, "map task {task} exhausted its attempts")
            }
            JobError::ReduceAttemptsExhausted { reduce } => {
                write!(f, "reduce task r{reduce} exhausted its attempts")
            }
            JobError::AllNodesBlacklisted => write!(f, "every node is blacklisted for this job"),
            JobError::InputLost { blocks } => {
                write!(f, "{} input block(s) lost every replica", blocks.len())
            }
        }
    }
}

impl std::error::Error for JobError {}

/// Outcome of one sandboxed driver evaluation: a directive, or a typed
/// provider failure for the runtime's guard-rail plane to absorb.
pub type GrowthOutcome = Result<GrowthDirective, ProviderError>;

/// Progress statistics for one job, as passed to its [`GrowthDriver`] at
/// each evaluation (paper: "statistics about the output produced by
/// finished mappers, the status of the job").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobProgress {
    /// The job being reported on.
    pub job: JobId,
    /// Splits added to the job so far (scheduled or done).
    pub splits_added: u32,
    /// Splits whose map task has completed.
    pub splits_completed: u32,
    /// Map tasks currently executing.
    pub splits_running: u32,
    /// Map tasks waiting for a slot.
    pub splits_pending: u32,
    /// Records scanned by completed map tasks.
    pub records_processed: u64,
    /// Output pairs produced by completed map tasks.
    pub map_output_records: u64,
}

/// A growth driver's directive after an evaluation (Figure 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrowthDirective {
    /// "End of input": no further input will be added; once the scheduled
    /// maps finish, the job proceeds to the reduce phase.
    EndOfInput,
    /// "Input available": schedule these additional splits.
    AddInput(Vec<BlockId>),
    /// "No input available": wait and reassess at the next evaluation.
    Wait,
}

/// Everything an evaluation hook gets to look at, bundled so future
/// statistics (the paper's cluster-load extensions) extend this struct
/// instead of every implementor's signature.
#[derive(Debug, Clone, Copy)]
pub struct EvalContext<'a> {
    /// Progress of the job under evaluation.
    pub progress: &'a JobProgress,
    /// Cluster-wide status at evaluation time.
    pub cluster: &'a ClusterStatus,
    /// Upper bound on splits the callee may request in this round. The
    /// runtime evaluates drivers with `u64::MAX` (drivers own their policy);
    /// policy layers such as `DynamicDriver` tighten it before delegating to
    /// their Input Provider.
    pub grab_limit: u64,
    /// Blocks that landed in the namespace since the last consultation
    /// (`MrRuntime::evolve` growth, delivered exactly once). Standing
    /// queries fold these into their candidate pool; ordinary drivers may
    /// ignore them. Empty outside the evolve path.
    pub arrived: &'a [BlockId],
    /// For estimating aggregate jobs: the runtime's latest error-bound
    /// probe, folded from completed map output just before this
    /// evaluation. `None` for ordinary jobs (and before any map task has
    /// completed on an estimating one).
    pub agg: Option<&'a crate::approx::AggProbe>,
}

impl<'a> EvalContext<'a> {
    /// A context with no grab restriction (as the runtime hands to drivers).
    pub fn unlimited(progress: &'a JobProgress, cluster: &'a ClusterStatus) -> Self {
        EvalContext {
            progress,
            cluster,
            grab_limit: u64::MAX,
            arrived: &[],
            agg: None,
        }
    }

    /// The same context with a tightened grab limit.
    pub fn with_grab_limit(self, grab_limit: u64) -> Self {
        EvalContext { grab_limit, ..self }
    }

    /// The same context carrying newly arrived blocks.
    pub fn with_arrived(self, arrived: &'a [BlockId]) -> Self {
        EvalContext { arrived, ..self }
    }

    /// The same context carrying an error-bound probe.
    pub fn with_agg(self, agg: Option<&'a crate::approx::AggProbe>) -> Self {
        EvalContext { agg, ..self }
    }
}

/// Runtime-side hook controlling a job's intake of input.
///
/// The runtime invokes drivers only through the fallible `try_*` entry
/// points, under a panic sandbox: a panicking or misbehaving driver fails
/// (or, with a retry budget, re-consults) its own job instead of the
/// whole simulated cluster. The defaults delegate to the infallible
/// methods, so plain drivers implement only those.
pub trait GrowthDriver {
    /// Splits to schedule at submission time.
    fn initial_input(&mut self, cluster: &ClusterStatus) -> Vec<BlockId>;

    /// Periodic evaluation. The runtime calls this every
    /// [`GrowthDriver::evaluation_interval`] until it returns
    /// [`GrowthDirective::EndOfInput`].
    fn evaluate(&mut self, ctx: EvalContext<'_>) -> GrowthDirective;

    /// How often to evaluate.
    fn evaluation_interval(&self) -> SimDuration;

    /// Fallible submission hook, what the runtime actually calls. Layered
    /// drivers (e.g. `DynamicDriver`) override this to sandbox their
    /// embedded Input Provider and surface typed failures.
    fn try_initial_input(
        &mut self,
        cluster: &ClusterStatus,
    ) -> Result<Vec<BlockId>, ProviderError> {
        Ok(self.initial_input(cluster))
    }

    /// Fallible evaluation hook, what the runtime actually calls.
    fn try_evaluate(&mut self, ctx: EvalContext<'_>) -> GrowthOutcome {
        Ok(self.evaluate(ctx))
    }

    /// The most splits one `AddInput` directive may carry right now. The
    /// runtime truncates over-long directives to this bound (tracing a
    /// `GrabLimitClamped` event), so a buggy or hostile provider cannot
    /// flood the job. Policy-bearing drivers override this with their
    /// grab-limit formula; the default is unbounded.
    fn grab_limit(&self, _cluster: &ClusterStatus) -> u64 {
        u64::MAX
    }
}

/// The stock-Hadoop driver: all splits up front, immediately end-of-input.
pub struct StaticDriver {
    splits: Vec<BlockId>,
}

impl StaticDriver {
    /// Drive a job over exactly these splits.
    pub fn new(splits: Vec<BlockId>) -> Self {
        StaticDriver { splits }
    }
}

impl GrowthDriver for StaticDriver {
    fn initial_input(&mut self, _cluster: &ClusterStatus) -> Vec<BlockId> {
        std::mem::take(&mut self.splits)
    }

    fn evaluate(&mut self, _ctx: EvalContext<'_>) -> GrowthDirective {
        GrowthDirective::EndOfInput
    }

    fn evaluation_interval(&self) -> SimDuration {
        // Immaterial: the first evaluation already ends input.
        SimDuration::from_secs(1)
    }
}

/// Final accounting for a completed job.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// The job.
    pub job: JobId,
    /// When it was submitted.
    pub submit_time: incmr_simkit::SimTime,
    /// When its reduce committed.
    pub finish_time: incmr_simkit::SimTime,
    /// Splits (partitions) actually processed — the paper's Figure 5(d)
    /// resource-usage metric.
    pub splits_processed: u32,
    /// Records scanned across all map tasks.
    pub records_processed: u64,
    /// Map output pairs fed to the reduce phase.
    pub map_output_records: u64,
    /// Map tasks that read their split from a local disk.
    pub local_tasks: u32,
    /// Failed map-task attempts (nonzero only under fault injection).
    pub task_failures: u32,
    /// True if the job was aborted; `output` is empty and `error` says
    /// why in that case.
    pub failed: bool,
    /// Why the job was aborted (`None` for completed jobs, including
    /// partial-sample completions).
    pub error: Option<JobError>,
    /// Final reduce output.
    pub output: Vec<(Key, Record)>,
    /// This job's latency histograms (empty when the job opted out via
    /// `mapred.job.histogram.enabled=false`). Merging these across jobs
    /// reproduces the runtime-wide registry exactly.
    pub histograms: crate::obs::MetricsRegistry,
    /// For aggregate jobs (`mapred.agg.*`): how the estimator classified
    /// the finish — bound met early, growth budget exhausted, or exact
    /// full scan. `None` for ordinary jobs and failed jobs.
    pub agg: Option<crate::approx::AggReport>,
}

impl JobResult {
    /// Submission-to-completion latency.
    pub fn response_time(&self) -> SimDuration {
        self.finish_time - self.submit_time
    }

    /// Fraction of map tasks that were data-local.
    pub fn locality(&self) -> f64 {
        if self.splits_processed == 0 {
            0.0
        } else {
            self.local_tasks as f64 / self.splits_processed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_simkit::SimTime;

    fn status() -> ClusterStatus {
        ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 0,
            running_jobs: 0,
            queued_map_tasks: 0,
        }
    }

    #[test]
    fn static_driver_hands_over_everything_then_ends() {
        let blocks = vec![BlockId(0), BlockId(1), BlockId(2)];
        let mut d = StaticDriver::new(blocks.clone());
        assert_eq!(d.initial_input(&status()), blocks);
        let p = JobProgress {
            job: JobId(0),
            splits_added: 3,
            splits_completed: 0,
            splits_running: 3,
            splits_pending: 0,
            records_processed: 0,
            map_output_records: 0,
        };
        assert_eq!(
            d.evaluate(EvalContext::unlimited(&p, &status())),
            GrowthDirective::EndOfInput
        );
    }

    #[test]
    fn builder_defaults_and_overrides() {
        struct NullInput;
        impl InputFormat for NullInput {
            fn read(&self, _block: BlockId) -> crate::exec::SplitData {
                crate::exec::SplitData::Records(vec![])
            }
        }
        struct NullMapper;
        impl Mapper for NullMapper {
            fn run(&self, _data: crate::exec::SplitData) -> crate::exec::MapResult {
                crate::exec::MapResult::default()
            }
        }
        let spec = JobSpec::builder()
            .input(NullInput)
            .mapper(NullMapper)
            .set(keys::JOB_NAME, "t")
            .reduces(3)
            .build();
        assert_eq!(spec.conf.get(keys::JOB_NAME), Some("t"));
        assert_eq!(spec.conf.get(keys::NUM_REDUCE_TASKS), Some("3"));
        // Default reducer is the identity; default combiner is none.
        let mut out = Vec::new();
        spec.reducer.reduce(&Key::from("k"), &[], &mut out);
        assert!(out.is_empty());
        assert!(spec.combiner.is_none());
        assert_eq!(spec.conf.get(keys::COMBINER_CLASS), None);
    }

    #[test]
    fn builder_records_combiner_class() {
        struct NullInput;
        impl InputFormat for NullInput {
            fn read(&self, _block: BlockId) -> crate::exec::SplitData {
                crate::exec::SplitData::Records(vec![])
            }
        }
        struct NullMapper;
        impl Mapper for NullMapper {
            fn run(&self, _data: crate::exec::SplitData) -> crate::exec::MapResult {
                crate::exec::MapResult::default()
            }
        }
        struct Passthrough;
        impl Combiner for Passthrough {
            fn combine(&self, pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)> {
                pairs
            }
        }
        let spec = JobSpec::builder()
            .input(NullInput)
            .mapper(NullMapper)
            .combiner(Passthrough)
            .build();
        assert!(spec.combiner.is_some());
        assert!(spec
            .conf
            .get(keys::COMBINER_CLASS)
            .expect("combiner class recorded")
            .contains("Passthrough"));
    }

    #[test]
    #[should_panic(expected = "requires .mapper")]
    fn builder_without_mapper_panics() {
        struct NullInput;
        impl InputFormat for NullInput {
            fn read(&self, _block: BlockId) -> crate::exec::SplitData {
                crate::exec::SplitData::Records(vec![])
            }
        }
        let _ = JobSpec::builder().input(NullInput).build();
    }

    struct NullInput2;
    impl InputFormat for NullInput2 {
        fn read(&self, _block: BlockId) -> crate::exec::SplitData {
            crate::exec::SplitData::Records(vec![])
        }
    }
    struct NullMapper2;
    impl Mapper for NullMapper2 {
        fn run(&self, _data: crate::exec::SplitData) -> crate::exec::MapResult {
            crate::exec::MapResult::default()
        }
    }

    #[test]
    fn try_build_rejects_missing_parts_with_typed_errors() {
        assert!(matches!(
            JobSpec::builder().mapper(NullMapper2).try_build(),
            Err(JobConfigError::MissingInput)
        ));
        assert!(matches!(
            JobSpec::builder().input(NullInput2).try_build(),
            Err(JobConfigError::MissingMapper)
        ));
        assert!(JobSpec::builder()
            .input(NullInput2)
            .mapper(NullMapper2)
            .try_build()
            .is_ok());
    }

    #[test]
    fn try_build_rejects_malformed_numeric_conf() {
        let err = JobSpec::builder()
            .input(NullInput2)
            .mapper(NullMapper2)
            .set(keys::NUM_REDUCE_TASKS, "several")
            .try_build()
            .err()
            .expect("malformed reduce count must be rejected");
        match err {
            JobConfigError::BadConf(e) => {
                assert_eq!(e.key, keys::NUM_REDUCE_TASKS);
                assert_eq!(e.value, "several");
            }
            other => panic!("expected BadConf, got {other:?}"),
        }
        let err = JobSpec::builder()
            .input(NullInput2)
            .mapper(NullMapper2)
            .set(crate::runtime::MATERIALIZE_CAP_KEY, "-3")
            .try_build()
            .err()
            .expect("malformed materialize cap must be rejected");
        assert!(matches!(err, JobConfigError::BadConf(_)));
        assert!(err.to_string().contains("not a valid u64"), "{err}");
    }

    #[test]
    fn guardrail_knobs_land_in_conf_and_validate() {
        let spec = JobSpec::builder()
            .input(NullInput2)
            .mapper(NullMapper2)
            .provider_retry_budget(3)
            .max_idle_evaluations(16)
            .deadline(SimDuration::from_secs(30))
            .allow_partial(true)
            .build();
        assert_eq!(spec.conf.get(keys::PROVIDER_RETRY_BUDGET), Some("3"));
        assert_eq!(spec.conf.get(keys::MAX_IDLE_EVALUATIONS), Some("16"));
        assert_eq!(spec.conf.get(keys::JOB_DEADLINE_MS), Some("30000"));
        assert!(spec.conf.get_bool(keys::ALLOW_PARTIAL));

        assert_eq!(
            JobSpec::builder()
                .input(NullInput2)
                .mapper(NullMapper2)
                .deadline(SimDuration::ZERO)
                .try_build()
                .err(),
            Some(JobConfigError::ZeroDeadline)
        );
        assert!(matches!(
            JobSpec::builder()
                .input(NullInput2)
                .mapper(NullMapper2)
                .set(keys::PROVIDER_RETRY_BUDGET, "lots")
                .try_build(),
            Err(JobConfigError::BadConf(_))
        ));
        assert!(matches!(
            JobSpec::builder()
                .input(NullInput2)
                .mapper(NullMapper2)
                .set(keys::MAX_IDLE_EVALUATIONS, "-1")
                .try_build(),
            Err(JobConfigError::BadConf(_))
        ));
    }

    #[test]
    fn replication_knob_lands_in_conf_and_validates() {
        let spec = JobSpec::builder()
            .input(NullInput2)
            .mapper(NullMapper2)
            .replication(3)
            .build();
        assert_eq!(spec.conf.get(keys::DFS_REPLICATION), Some("3"));
        for bad in ["0", "-1", "300", "lots"] {
            let err = JobSpec::builder()
                .input(NullInput2)
                .mapper(NullMapper2)
                .set(keys::DFS_REPLICATION, bad)
                .try_build()
                .err()
                .expect("bad replication must be rejected");
            match err {
                JobConfigError::BadConf(e) => {
                    assert_eq!(e.key, keys::DFS_REPLICATION);
                    assert_eq!(e.value, bad);
                }
                other => panic!("expected BadConf, got {other:?}"),
            }
        }
    }

    #[test]
    fn provider_error_from_panic_extracts_string_payloads() {
        let p = std::panic::catch_unwind(|| panic!("boom")).unwrap_err();
        assert_eq!(
            ProviderError::from_panic(ProviderStage::Evaluate, p),
            ProviderError::Panicked {
                stage: ProviderStage::Evaluate,
                message: "boom".into()
            }
        );
        let p = std::panic::catch_unwind(|| panic!("{} {}", "formatted", 7)).unwrap_err();
        let e = ProviderError::from_panic(ProviderStage::InitialInput, p);
        assert!(e.to_string().contains("formatted 7"), "{e}");
        assert!(e.to_string().contains("initial_input"), "{e}");
        let p = std::panic::catch_unwind(|| std::panic::panic_any(17u32)).unwrap_err();
        let e = ProviderError::from_panic(ProviderStage::Evaluate, p);
        assert!(e.to_string().contains("<non-string panic payload>"), "{e}");
    }

    #[test]
    fn job_result_derivations() {
        let r = JobResult {
            job: JobId(1),
            submit_time: SimTime::from_secs(10),
            finish_time: SimTime::from_secs(70),
            splits_processed: 10,
            records_processed: 1000,
            map_output_records: 5,
            local_tasks: 7,
            task_failures: 0,
            failed: false,
            error: None,
            output: vec![],
            histograms: crate::obs::MetricsRegistry::new(),
            agg: None,
        };
        assert_eq!(r.response_time(), SimDuration::from_secs(60));
        assert!((r.locality() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn locality_of_empty_job_is_zero() {
        let r = JobResult {
            job: JobId(1),
            submit_time: SimTime::ZERO,
            finish_time: SimTime::ZERO,
            splits_processed: 0,
            records_processed: 0,
            map_output_records: 0,
            local_tasks: 0,
            task_failures: 0,
            failed: false,
            error: None,
            output: vec![],
            histograms: crate::obs::MetricsRegistry::new(),
            agg: None,
        };
        assert_eq!(r.locality(), 0.0);
    }

    #[test]
    fn ids_display() {
        assert_eq!(JobId(7).to_string(), "job_0007");
        assert_eq!(TaskId(12).to_string(), "m_000012");
    }
}
