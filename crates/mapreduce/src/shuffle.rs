//! The streaming shuffle: partitioned map output and incremental merge.
//!
//! Stock Hadoop partitions map output on the map side (`Partitioner.
//! getPartition` inside the map task's sort/spill path) and reducers pull
//! each map's finished partition as soon as the map commits. This module
//! reproduces that shape for the simulated runtime:
//!
//! * [`PartitionedPairs`] is built *inside the map task on the data-plane
//!   worker* (`parallel::MapUnit::compute`): emitted pairs are hashed with
//!   [`fnv1a`] into `reduce_tasks` buckets while still on the worker
//!   thread, so the control plane never re-walks a map's output.
//! * [`ShuffleState`] lives on the control plane, one per job. As each map
//!   completes (in scheduler-assignment order), its partitions are merged
//!   into per-reduce [`PartitionBuffer`]s — grouping by key, recording
//!   first-seen key order and exact byte/record shares. Reduce-begin is
//!   then O(`reduce_tasks`): the buffers *are* the reduce inputs.
//!
//! The job-level materialise cap (`mapred.job.materialize.cap`) is honoured
//! exactly as the old monolithic path did — the first `cap` pairs in
//! (map-task, emission) order are kept. [`PartitionedPairs`] records
//! each pair's partition index in emission order so a cap that bites
//! mid-task keeps precisely the emission-order prefix of every partition.
//! The proptest below pins this equivalence against a monolithic reference
//! re-partition for arbitrary key distributions, task shapes, caps, and
//! `reduce_tasks` counts.
//!
//! ## Merge order and fault tolerance
//!
//! Maps *complete* in an order that depends on scheduling, stragglers, and
//! re-executed attempts — but the merged shuffle content must not. The
//! runtime therefore merges through [`ShuffleState::merge_task`], which
//! enforces **task-id order**: a map that completes ahead of a lower-id
//! task is parked and merged only once the frontier reaches it. The merged
//! buffers (and the exact materialise-cap prefix) are then a pure function
//! of the task *set* and each task's output — identical whether a node
//! died mid-job, a straggler finished last, or nothing failed at all. This
//! is what lets `tests/chaos.rs` assert that a surviving job's output
//! fingerprint matches the fault-free run, schedule for schedule.

use std::collections::{BTreeMap, HashMap};

use incmr_data::{BatchSelection, Record};

use crate::exec::{Key, KeyedBatch};

/// FNV-1a, the key-partitioning hash (Hadoop uses `key.hashCode() % R`;
/// any stable hash serves, and FNV-1a is deterministic across platforms).
pub fn fnv1a(key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Which of `reduce_tasks` partitions `key` belongs to.
pub fn partition_of(key: &str, reduce_tasks: u32) -> usize {
    (fnv1a(key) % u64::from(reduce_tasks.max(1))) as usize
}

/// One map task's output, pre-partitioned by reduce task on the data-plane
/// worker. Holds classic pairs and/or zero-copy [`KeyedBatch`] runs; the
/// task's emission order is all pairs first, then every batch's rows in
/// batch order (matching `MapResult`'s contract).
#[derive(Debug, Clone, Default)]
pub struct PartitionedPairs {
    /// `partitions[p]` holds the pairs destined for reduce task `p`, in
    /// emission order.
    partitions: Vec<Vec<(Key, Record)>>,
    /// `batch_partitions[p]` holds the keyed batch runs destined for
    /// reduce task `p`, in emission order. A run is never split across
    /// partitions — all its rows share one key.
    batch_partitions: Vec<Vec<KeyedBatch>>,
    /// Partition index of each emitted record (pairs first, then each
    /// batch row), in emission order. Only needed to replay a mid-task
    /// materialise-cap cut when there is more than one partition, so it
    /// stays empty for the common single-reducer case.
    emission_order: Vec<u32>,
}

impl PartitionedPairs {
    /// Partition `pairs` (in emission order) across `reduce_tasks` buckets.
    pub fn build(pairs: Vec<(Key, Record)>, reduce_tasks: u32) -> Self {
        Self::build_with_batches(pairs, Vec::new(), reduce_tasks)
    }

    /// Partition pairs and batch runs (in emission order: pairs first)
    /// across `reduce_tasks` buckets. Batch runs move as selection-vector
    /// handles — their rows are never materialised here.
    pub fn build_with_batches(
        pairs: Vec<(Key, Record)>,
        batches: Vec<KeyedBatch>,
        reduce_tasks: u32,
    ) -> Self {
        let r = reduce_tasks.max(1);
        if r == 1 {
            return PartitionedPairs {
                partitions: vec![pairs],
                batch_partitions: vec![batches],
                emission_order: Vec::new(),
            };
        }
        let mut partitions: Vec<Vec<(Key, Record)>> = (0..r).map(|_| Vec::new()).collect();
        let mut batch_partitions: Vec<Vec<KeyedBatch>> = (0..r).map(|_| Vec::new()).collect();
        let total: usize = pairs.len() + batches.iter().map(|b| b.rows.len()).sum::<usize>();
        let mut emission_order = Vec::with_capacity(total);
        for (key, value) in pairs {
            let p = partition_of(&key, r);
            emission_order.push(p as u32);
            partitions[p].push((key, value));
        }
        for batch in batches {
            let p = partition_of(&batch.key, r);
            emission_order.extend(std::iter::repeat_n(p as u32, batch.rows.len()));
            batch_partitions[p].push(batch);
        }
        PartitionedPairs {
            partitions,
            batch_partitions,
            emission_order,
        }
    }

    /// Number of partitions (= the job's `reduce_tasks`).
    pub fn reduce_tasks(&self) -> usize {
        self.partitions.len()
    }

    /// Visit every materialised pair across all partitions, in partition
    /// order then emission order within a partition. Zero-copy batch runs
    /// are not visited. This is how the runtime's approximate-aggregation
    /// plane reads a map task's per-group accumulator parts without
    /// consuming the output before the shuffle merge.
    pub fn iter_pairs(&self) -> impl Iterator<Item = &(Key, Record)> {
        self.partitions.iter().flatten()
    }

    /// Total records (pairs plus batch rows) across all partitions.
    pub fn len(&self) -> usize {
        let pairs: usize = self.partitions.iter().map(Vec::len).sum();
        let rows: usize = self
            .batch_partitions
            .iter()
            .flatten()
            .map(|b| b.rows.len())
            .sum();
        pairs + rows
    }

    /// True when the task emitted nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many of each partition's records fall within the first `room`
    /// records of the task in emission order.
    fn take_counts(&self, room: usize) -> Vec<usize> {
        if room >= self.len() {
            return self
                .partitions
                .iter()
                .zip(&self.batch_partitions)
                .map(|(pairs, batches)| {
                    pairs.len() + batches.iter().map(|b| b.rows.len()).sum::<usize>()
                })
                .collect();
        }
        let mut counts = vec![0usize; self.partitions.len()];
        if self.partitions.len() == 1 {
            counts[0] = room;
        } else {
            for &p in self.emission_order.iter().take(room) {
                counts[p as usize] += 1;
            }
        }
        counts
    }
}

/// One shuffle segment of a key group: either materialised rows or a
/// zero-copy batch selection. Segments keep arrival order; the batch kind
/// is only materialised at the reduce boundary.
#[derive(Debug, Clone)]
enum ValueSeg {
    /// Individually materialised records (the classic pair path).
    Rows(Vec<Record>),
    /// A shared-batch selection (the zero-copy path).
    Batch(BatchSelection),
}

/// One key group's values: an ordered run of segments totalling `len`
/// records. Grows row-by-row from classic pairs and run-at-a-time from
/// [`KeyedBatch`]es; [`ValueSeq::to_rows`] materialises at the reduce
/// boundary. Equality (used by the shuffle equivalence proptests) compares
/// the materialised record streams, so a batch segment equals the rows it
/// would produce.
#[derive(Debug, Clone, Default)]
pub struct ValueSeq {
    segs: Vec<ValueSeg>,
    len: usize,
}

impl ValueSeq {
    /// Append one materialised record.
    pub fn push(&mut self, value: Record) {
        if let Some(ValueSeg::Rows(rows)) = self.segs.last_mut() {
            rows.push(value);
        } else {
            self.segs.push(ValueSeg::Rows(vec![value]));
        }
        self.len += 1;
    }

    /// Append a whole batch selection without materialising it.
    pub fn push_batch(&mut self, rows: BatchSelection) {
        self.len += rows.len();
        self.segs.push(ValueSeg::Batch(rows));
    }

    /// Records in the group.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no records have arrived.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Materialise every record, in arrival order — the row boundary where
    /// the reduce phase leaves columnar-land.
    pub fn to_rows(&self) -> Vec<Record> {
        let mut out = Vec::with_capacity(self.len);
        for seg in &self.segs {
            match seg {
                ValueSeg::Rows(rows) => out.extend(rows.iter().cloned()),
                ValueSeg::Batch(sel) => out.extend(sel.iter_records()),
            }
        }
        out
    }
}

impl PartialEq for ValueSeq {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.to_rows() == other.to_rows()
    }
}

impl FromIterator<Record> for ValueSeq {
    fn from_iter<I: IntoIterator<Item = Record>>(iter: I) -> Self {
        let rows: Vec<Record> = iter.into_iter().collect();
        let len = rows.len();
        ValueSeq {
            segs: vec![ValueSeg::Rows(rows)],
            len,
        }
    }
}

/// One reduce task's accumulated input: the framework-side half of the
/// shuffle, grown incrementally as maps complete.
#[derive(Debug, Clone, Default)]
pub struct PartitionBuffer {
    /// Distinct keys in first-seen order (reducers iterate groups in this
    /// order, as the old monolithic partitioner did).
    pub key_order: Vec<Key>,
    /// Values per key, in arrival order — batch runs stay zero-copy until
    /// the reduce boundary.
    pub groups: HashMap<Key, ValueSeq>,
    /// Exact bytes of materialised input merged into this partition.
    pub shuffle_bytes: u64,
    /// Exact count of materialised input records merged in.
    pub input_records: u64,
}

impl PartitionBuffer {
    /// Absorb the first `count` pairs of one map's share, in emission
    /// order.
    fn absorb(&mut self, mut pairs: Vec<(Key, Record)>, count: usize) {
        pairs.truncate(count);
        for (key, value) in pairs {
            self.shuffle_bytes += key.len() as u64 + value.width();
            self.input_records += 1;
            let group = self.groups.entry(Key::clone(&key)).or_default();
            if group.is_empty() {
                self.key_order.push(key);
            }
            group.push(value);
        }
    }

    /// Absorb up to `budget` batch rows of one map's share, run by run in
    /// emission order, truncating the run that straddles the cap. Byte and
    /// record accounting matches what `absorb` would charge for the
    /// materialised pairs.
    fn absorb_batches(&mut self, batches: Vec<KeyedBatch>, mut budget: usize) {
        for mut kb in batches {
            if budget == 0 {
                return;
            }
            if kb.rows.len() > budget {
                kb.rows.truncate(budget);
            }
            if kb.rows.is_empty() {
                continue;
            }
            budget -= kb.rows.len();
            self.shuffle_bytes += kb.shuffle_bytes();
            self.input_records += kb.rows.len() as u64;
            let group = self.groups.entry(Key::clone(&kb.key)).or_default();
            if group.is_empty() {
                self.key_order.push(Key::clone(&kb.key));
            }
            group.push_batch(kb.rows);
        }
    }
}

/// Per-job streaming shuffle state: one [`PartitionBuffer`] per reduce
/// task plus the job-wide materialise-cap budget.
#[derive(Debug, Clone, Default)]
pub struct ShuffleState {
    buffers: Vec<PartitionBuffer>,
    cap: u64,
    materialized: u64,
    /// Next task id the in-order frontier will merge.
    next_seq: u32,
    /// Completed-but-early task outputs, waiting for the frontier.
    parked: BTreeMap<u32, PartitionedPairs>,
}

impl ShuffleState {
    /// Fresh state for a job with `reduce_tasks` reducers and a
    /// materialise cap (`u64::MAX` for none).
    pub fn new(reduce_tasks: u32, materialize_cap: u64) -> Self {
        ShuffleState {
            buffers: (0..reduce_tasks.max(1))
                .map(|_| PartitionBuffer::default())
                .collect(),
            cap: materialize_cap,
            materialized: 0,
            next_seq: 0,
            parked: BTreeMap::new(),
        }
    }

    /// Merge one completed map's partitioned output. Must be called in
    /// map-completion order — with the cap, *which* pairs survive depends
    /// on how many came before.
    pub fn merge(&mut self, pairs: PartitionedPairs) {
        debug_assert_eq!(pairs.reduce_tasks(), self.buffers.len());
        let room = self.cap.saturating_sub(self.materialized);
        let take = room.min(pairs.len() as u64) as usize;
        let counts = pairs.take_counts(take);
        for (buffer, ((part, batches), count)) in self.buffers.iter_mut().zip(
            pairs
                .partitions
                .into_iter()
                .zip(pairs.batch_partitions)
                .zip(counts),
        ) {
            // Within a partition, emission order is pairs first, then
            // batch rows (the task-level contract), so a mid-partition cap
            // cut takes whole pairs before any batch rows.
            let pair_take = count.min(part.len());
            let batch_take = count - pair_take;
            buffer.absorb(part, pair_take);
            buffer.absorb_batches(batches, batch_take);
        }
        self.materialized += take as u64;
    }

    /// Merge the output of map task `seq`, enforcing task-id order: the
    /// frontier advances one task at a time, and an out-of-order completion
    /// is parked until every lower-id task has merged. Each task id must be
    /// merged exactly once — re-executed attempts of an already-merged task
    /// must not call this again (their output is byte-identical anyway; see
    /// the module docs on fault tolerance).
    pub fn merge_task(&mut self, seq: u32, pairs: PartitionedPairs) {
        debug_assert!(
            seq >= self.next_seq && !self.parked.contains_key(&seq),
            "task {seq} merged twice (frontier at {})",
            self.next_seq
        );
        if seq != self.next_seq {
            self.parked.insert(seq, pairs);
            return;
        }
        self.merge(pairs);
        self.next_seq += 1;
        while let Some(parked) = self.parked.remove(&self.next_seq) {
            self.merge(parked);
            self.next_seq += 1;
        }
    }

    /// Task ids merged through the in-order frontier so far.
    pub fn merged_tasks(&self) -> u32 {
        self.next_seq
    }

    /// True when no out-of-order completions are waiting on the frontier.
    pub fn is_settled(&self) -> bool {
        self.parked.is_empty()
    }

    /// Completed-but-early task outputs currently parked behind the
    /// in-order frontier (observability: a large value means stragglers
    /// are holding up the streaming merge).
    pub fn parked_tasks(&self) -> usize {
        self.parked.len()
    }

    /// Materialised pairs merged so far (≤ the cap).
    pub fn materialized_records(&self) -> u64 {
        self.materialized
    }

    /// Read access to the per-reduce buffers.
    pub fn buffers(&self) -> &[PartitionBuffer] {
        &self.buffers
    }

    /// Hand the buffers over to the reduce phase.
    pub fn into_buffers(self) -> Vec<PartitionBuffer> {
        self.buffers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::Value;
    use proptest::prelude::*;

    fn pair(key: &str, v: i64) -> (Key, Record) {
        (Key::from(key), Record::new(vec![Value::Int(v)]))
    }

    /// The old monolithic path: concatenate every task's pairs in
    /// completion order, apply the cap to the flat stream, then partition
    /// and group in one pass.
    fn reference_partition(
        tasks: &[Vec<(Key, Record)>],
        reduce_tasks: u32,
        cap: u64,
    ) -> Vec<PartitionBuffer> {
        let r = reduce_tasks.max(1);
        let mut buffers: Vec<PartitionBuffer> =
            (0..r).map(|_| PartitionBuffer::default()).collect();
        let flat: Vec<(Key, Record)> = tasks.iter().flatten().cloned().collect();
        for (key, value) in flat.into_iter().take(cap.min(usize::MAX as u64) as usize) {
            buffers[partition_of(&key, r)].absorb(vec![(key, value)], 1);
        }
        buffers
    }

    fn streaming_partition(
        tasks: &[Vec<(Key, Record)>],
        reduce_tasks: u32,
        cap: u64,
    ) -> Vec<PartitionBuffer> {
        let mut state = ShuffleState::new(reduce_tasks, cap);
        for task in tasks {
            state.merge(PartitionedPairs::build(task.clone(), reduce_tasks));
        }
        state.into_buffers()
    }

    fn assert_buffers_equal(a: &[PartitionBuffer], b: &[PartitionBuffer]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.key_order, y.key_order);
            assert_eq!(x.groups, y.groups);
            assert_eq!(x.shuffle_bytes, y.shuffle_bytes);
            assert_eq!(x.input_records, y.input_records);
        }
    }

    #[test]
    fn single_partition_groups_in_first_seen_order() {
        let mut state = ShuffleState::new(1, u64::MAX);
        state.merge(PartitionedPairs::build(
            vec![pair("b", 1), pair("a", 2), pair("b", 3)],
            1,
        ));
        state.merge(PartitionedPairs::build(vec![pair("a", 4)], 1));
        let buffers = state.into_buffers();
        let keys: Vec<&str> = buffers[0].key_order.iter().map(|k| &**k).collect();
        assert_eq!(keys, ["b", "a"]);
        assert_eq!(buffers[0].groups[&Key::from("a")].len(), 2);
        assert_eq!(buffers[0].input_records, 4);
    }

    #[test]
    fn cap_cuts_mid_task_preserving_emission_order_prefix() {
        // Two tasks of 3; cap 4 keeps task 1 entirely and task 2's first
        // pair only — regardless of which partitions those pairs hash to.
        let tasks = vec![
            vec![pair("a", 0), pair("b", 1), pair("c", 2)],
            vec![pair("d", 3), pair("e", 4), pair("f", 5)],
        ];
        for r in [1u32, 2, 3, 5] {
            let streamed = streaming_partition(&tasks, r, 4);
            let total: u64 = streamed.iter().map(|b| b.input_records).sum();
            assert_eq!(total, 4, "reduce_tasks={r}");
            assert_buffers_equal(&streamed, &reference_partition(&tasks, r, 4));
        }
    }

    #[test]
    fn frontier_merge_parks_out_of_order_tasks() {
        let mut state = ShuffleState::new(1, u64::MAX);
        state.merge_task(2, PartitionedPairs::build(vec![pair("c", 2)], 1));
        state.merge_task(1, PartitionedPairs::build(vec![pair("b", 1)], 1));
        assert_eq!(state.merged_tasks(), 0, "frontier blocked on task 0");
        assert!(!state.is_settled());
        assert_eq!(state.parked_tasks(), 2);
        state.merge_task(0, PartitionedPairs::build(vec![pair("a", 0)], 1));
        assert_eq!(state.merged_tasks(), 3, "frontier drained the parked tasks");
        assert!(state.is_settled());
        assert_eq!(state.parked_tasks(), 0);
        let buffers = state.into_buffers();
        let keys: Vec<&str> = buffers[0].key_order.iter().map(|k| &**k).collect();
        assert_eq!(
            keys,
            ["a", "b", "c"],
            "merged in task order, not arrival order"
        );
    }

    #[test]
    fn frontier_cap_is_a_task_order_prefix_regardless_of_arrival() {
        // Cap 2 must keep task 0's pairs and drop task 1's, even though
        // task 1 arrived first.
        let mut state = ShuffleState::new(1, 2);
        state.merge_task(1, PartitionedPairs::build(vec![pair("late", 1)], 1));
        state.merge_task(
            0,
            PartitionedPairs::build(vec![pair("x", 0), pair("y", 0)], 1),
        );
        let buffers = state.into_buffers();
        let keys: Vec<&str> = buffers[0].key_order.iter().map(|k| &**k).collect();
        assert_eq!(keys, ["x", "y"], "cap prefix follows task ids");
    }

    /// Build a keyed batch over a one-column Int schema, one row per value.
    fn keyed_batch(key: &str, vals: &[i64]) -> KeyedBatch {
        use incmr_data::schema::{ColumnType, Schema};
        use incmr_data::{BatchSelection, RecordBatch};
        let schema = Schema::new(vec![("v", ColumnType::Int)]);
        let records: Vec<Record> = vals
            .iter()
            .map(|&v| Record::new(vec![Value::Int(v)]))
            .collect();
        KeyedBatch {
            key: Key::from(key),
            rows: BatchSelection::all(std::sync::Arc::new(RecordBatch::from_records(
                &schema, &records,
            ))),
        }
    }

    #[test]
    fn batch_runs_group_identically_to_their_flattened_pairs() {
        // One shuffle fed batches, one fed the equivalent pairs: the
        // buffers must agree on key order, groups, byte and record counts.
        let tasks: Vec<Vec<KeyedBatch>> = vec![
            vec![keyed_batch("b", &[1, 2]), keyed_batch("a", &[3])],
            vec![keyed_batch("a", &[4]), keyed_batch("c", &[])],
        ];
        for r in [1u32, 2, 3] {
            let mut batched = ShuffleState::new(r, u64::MAX);
            let mut rows = ShuffleState::new(r, u64::MAX);
            for task in &tasks {
                batched.merge(PartitionedPairs::build_with_batches(
                    Vec::new(),
                    task.clone(),
                    r,
                ));
                rows.merge(PartitionedPairs::build(
                    crate::exec::batches_to_pairs(task.clone()),
                    r,
                ));
            }
            assert_buffers_equal(&batched.into_buffers(), &rows.into_buffers());
        }
    }

    #[test]
    fn cap_truncates_the_straddling_batch_run() {
        // Task emits 2 pairs then a 3-row batch; cap 4 keeps the pairs and
        // the batch's first 2 rows, and an empty batch never registers its
        // key.
        let pairs = vec![pair("p", 0), pair("p", 1)];
        let batches = vec![keyed_batch("b", &[10, 11, 12]), keyed_batch("z", &[])];
        let mut state = ShuffleState::new(1, 4);
        state.merge(PartitionedPairs::build_with_batches(pairs, batches, 1));
        let buffers = state.into_buffers();
        let keys: Vec<&str> = buffers[0].key_order.iter().map(|k| &**k).collect();
        assert_eq!(keys, ["p", "b"], "empty/overflow runs add no keys");
        assert_eq!(buffers[0].groups[&Key::from("b")].len(), 2);
        assert_eq!(buffers[0].input_records, 4);
    }

    #[test]
    fn zero_reduce_tasks_is_clamped_to_one() {
        let state = ShuffleState::new(0, u64::MAX);
        assert_eq!(state.buffers().len(), 1);
        assert_eq!(
            PartitionedPairs::build(vec![pair("x", 1)], 0).reduce_tasks(),
            1
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Streaming per-map-completion merge is byte-identical to the
        /// monolithic re-partition of the capped flat output stream, for
        /// arbitrary key distributions, task shapes, caps, and
        /// `reduce_tasks` counts.
        #[test]
        fn streaming_merge_matches_monolithic_reference(
            tasks in prop::collection::vec(
                prop::collection::vec((0u8..12, any::<i64>()), 0..40),
                0..12,
            ),
            reduce_tasks in 1u32..8,
            cap in prop::option::of(0u64..120),
        ) {
            let tasks: Vec<Vec<(Key, Record)>> = tasks
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|(k, v)| pair(&format!("key-{k}"), *v))
                        .collect()
                })
                .collect();
            let cap = cap.unwrap_or(u64::MAX);
            let streamed = streaming_partition(&tasks, reduce_tasks, cap);
            let reference = reference_partition(&tasks, reduce_tasks, cap);
            prop_assert_eq!(streamed.len(), reference.len());
            for (s, r) in streamed.iter().zip(&reference) {
                prop_assert_eq!(&s.key_order, &r.key_order);
                prop_assert_eq!(&s.groups, &r.groups);
                prop_assert_eq!(s.shuffle_bytes, r.shuffle_bytes);
                prop_assert_eq!(s.input_records, r.input_records);
            }
            let materialized: u64 = streamed.iter().map(|b| b.input_records).sum();
            let emitted: u64 = tasks.iter().map(|t| t.len() as u64).sum();
            prop_assert_eq!(materialized, emitted.min(cap));
        }

        /// Batch-run shuffling is byte-identical to shuffling the same
        /// rows as pairs, under arbitrary task shapes, caps, and partition
        /// counts — the invariant that lets mappers emit selection-vector
        /// handles without perturbing anything downstream.
        #[test]
        fn batched_merge_matches_pair_merge(
            tasks in prop::collection::vec(
                prop::collection::vec(
                    (0u8..6, prop::collection::vec(any::<i64>(), 0..6)),
                    0..6,
                ),
                0..8,
            ),
            reduce_tasks in 1u32..6,
            cap in prop::option::of(0u64..60),
        ) {
            let cap = cap.unwrap_or(u64::MAX);
            let tasks: Vec<Vec<KeyedBatch>> = tasks
                .iter()
                .map(|t| {
                    t.iter()
                        .map(|(k, vals)| keyed_batch(&format!("key-{k}"), vals))
                        .collect()
                })
                .collect();
            let mut batched = ShuffleState::new(reduce_tasks, cap);
            let mut rows = ShuffleState::new(reduce_tasks, cap);
            for task in &tasks {
                batched.merge(PartitionedPairs::build_with_batches(
                    Vec::new(),
                    task.clone(),
                    reduce_tasks,
                ));
                rows.merge(PartitionedPairs::build(
                    crate::exec::batches_to_pairs(task.clone()),
                    reduce_tasks,
                ));
            }
            let a = batched.into_buffers();
            let b = rows.into_buffers();
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.key_order, &y.key_order);
                prop_assert_eq!(&x.groups, &y.groups);
                prop_assert_eq!(x.shuffle_bytes, y.shuffle_bytes);
                prop_assert_eq!(x.input_records, y.input_records);
            }
        }

        /// The frontier merge is completion-order invariant: feeding tasks
        /// through `merge_task` in an arbitrary permutation produces
        /// byte-identical buffers to the in-order merge — the property the
        /// fault plane's re-executions and stragglers rely on.
        #[test]
        fn frontier_merge_is_arrival_order_invariant(
            tasks in prop::collection::vec(
                prop::collection::vec((0u8..10, any::<i64>()), 0..20),
                1..10,
            ),
            reduce_tasks in 1u32..6,
            cap in prop::option::of(0u64..80),
            perm_seed in any::<u64>(),
        ) {
            let tasks: Vec<Vec<(Key, Record)>> = tasks
                .iter()
                .map(|t| t.iter().map(|(k, v)| pair(&format!("k{k}"), *v)).collect())
                .collect();
            let cap = cap.unwrap_or(u64::MAX);
            let mut in_order = ShuffleState::new(reduce_tasks, cap);
            for (seq, task) in tasks.iter().enumerate() {
                in_order.merge_task(seq as u32, PartitionedPairs::build(task.clone(), reduce_tasks));
            }
            // A deterministic Fisher–Yates permutation of the arrival order.
            let mut order: Vec<usize> = (0..tasks.len()).collect();
            let mut state = perm_seed | 1;
            for i in (1..order.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                order.swap(i, (state >> 33) as usize % (i + 1));
            }
            let mut shuffled = ShuffleState::new(reduce_tasks, cap);
            for &seq in &order {
                shuffled.merge_task(seq as u32, PartitionedPairs::build(tasks[seq].clone(), reduce_tasks));
            }
            prop_assert!(shuffled.is_settled());
            prop_assert_eq!(shuffled.merged_tasks(), tasks.len() as u32);
            let a = in_order.into_buffers();
            let b = shuffled.into_buffers();
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&x.key_order, &y.key_order);
                prop_assert_eq!(&x.groups, &y.groups);
                prop_assert_eq!(x.shuffle_bytes, y.shuffle_bytes);
                prop_assert_eq!(x.input_records, y.input_records);
            }
        }
    }
}
