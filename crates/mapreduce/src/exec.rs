//! Execution interfaces: what user code plugs into the framework.
//!
//! Mirrors Hadoop's black-box contract (paper Section II-A): the framework
//! knows nothing about what a [`Mapper`] or [`Reducer`] does — it feeds the
//! mapper a split's data and collects `(key, value)` pairs. Keys are
//! strings (the sampling job uses a single dummy key so all candidates meet
//! in one reduce group); values are [`Record`]s.
//!
//! [`InputFormat`] abstracts where split data comes from.
//! [`DatasetInputFormat`] binds it to an `incmr-data` dataset with a chosen
//! [`ScanMode`] — `Full` materialises every record, `Planted` only the
//! predicate-matching ones (see the `incmr-data::generator` docs for why
//! the two are interchangeable).
//!
//! All traits here are `Send + Sync`: the runtime's data plane executes
//! map- and reduce-task record work on a persistent worker pool (see
//! `crate::parallel`), so user logic must be shareable across threads.
//! Implementations take `&self` and the built-ins hold only immutable
//! state, so this costs nothing in practice.
//!
//! Keys are interned as [`Key`] (`Arc<str>`) end-to-end — mappers typically
//! emit many pairs under few distinct keys (the sampling job uses a single
//! dummy key), so sharing one allocation per distinct key instead of one
//! `String` per pair removes the dominant allocation on the shuffle path.

use std::sync::Arc;

use incmr_data::{Dataset, Record, SplitGenerator};
use incmr_dfs::BlockId;

/// An interned map-output key. Cloning is a reference-count bump, so a
/// mapper emitting a million pairs under one key performs one allocation.
pub type Key = Arc<str>;

/// The contents of one input split as handed to a mapper.
#[derive(Debug, Clone)]
pub enum SplitData {
    /// Every record, in position order.
    Records(Vec<Record>),
    /// Only the records known to match the dataset's planted predicate,
    /// plus the total count the split holds.
    Planted {
        /// Total records in the split (matching + filler).
        total_records: u64,
        /// The matching records, in scan order.
        matches: Vec<Record>,
    },
}

impl SplitData {
    /// Total records this split represents.
    pub fn total_records(&self) -> u64 {
        match self {
            SplitData::Records(rs) => rs.len() as u64,
            SplitData::Planted { total_records, .. } => *total_records,
        }
    }
}

/// How a [`DatasetInputFormat`] materialises split contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Generate and hand over every record (tests, small examples).
    Full,
    /// Generate only the planted matches (large simulated runs).
    Planted,
}

/// Source of split contents, keyed by DFS block. `Send + Sync` so reads can
/// run on the data-plane worker pool.
pub trait InputFormat: Send + Sync {
    /// Materialise the contents of `block`.
    fn read(&self, block: BlockId) -> SplitData;
}

/// Reads splits from a planned [`Dataset`].
pub struct DatasetInputFormat {
    dataset: Arc<Dataset>,
    mode: ScanMode,
}

impl DatasetInputFormat {
    /// Bind to a dataset with the given scan mode.
    pub fn new(dataset: Arc<Dataset>, mode: ScanMode) -> Self {
        DatasetInputFormat { dataset, mode }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }
}

impl InputFormat for DatasetInputFormat {
    fn read(&self, block: BlockId) -> SplitData {
        let plan = self.dataset.plan(block);
        let factory = self.dataset.factory();
        let generator = SplitGenerator::new(&factory, plan.spec);
        match self.mode {
            ScanMode::Full => SplitData::Records(generator.full_iter().collect()),
            ScanMode::Planted => SplitData::Planted {
                total_records: plan.spec.records,
                matches: generator.planted_matches(),
            },
        }
    }
}

/// Output of one map task.
///
/// Besides materialised pairs, a mapper may report *unmaterialised* output:
/// records that exist for accounting purposes (output counts, shuffle
/// volume) but whose contents nobody downstream will look at. Large scan
/// jobs use this so that simulating them does not hold millions of records
/// in memory; the reduce phase still sees the correct record counts and
/// byte volumes.
#[derive(Debug, Clone, Default)]
pub struct MapResult {
    /// Emitted `(key, value)` pairs.
    pub pairs: Vec<(Key, Record)>,
    /// Records scanned (feeds selectivity estimation).
    pub records_read: u64,
    /// Output records accounted but not materialised.
    pub unmaterialized_outputs: u64,
    /// Bytes of unmaterialised output (for shuffle-volume modelling).
    pub unmaterialized_bytes: u64,
}

impl MapResult {
    /// Total output records, materialised or not.
    pub fn total_outputs(&self) -> u64 {
        self.pairs.len() as u64 + self.unmaterialized_outputs
    }

    /// Total output bytes, materialised or not.
    pub fn total_output_bytes(&self) -> u64 {
        let materialized: u64 = self
            .pairs
            .iter()
            .map(|(k, v)| k.len() as u64 + v.width())
            .sum();
        materialized + self.unmaterialized_bytes
    }
}

/// User map logic. Invoked once per split, potentially from a worker
/// thread — implementations must be pure with respect to `&self`.
pub trait Mapper: Send + Sync {
    /// Process a split and return emitted pairs plus counters.
    fn run(&self, data: &SplitData) -> MapResult;
}

/// Optional map-side aggregation, Hadoop's classic combiner: folds one map
/// task's emitted pairs *before* they are partitioned and shuffled. Runs on
/// the data-plane worker right after the mapper, so whatever it removes is
/// never materialised, partitioned, or counted as shuffle volume.
///
/// The contract matches Hadoop's: a combiner must be an optimisation only.
/// The reducer sees combined pairs in emission order, so for any job output
/// to remain well-defined the combiner must preserve the reducer's result
/// (e.g. pre-truncate for a LIMIT, pre-sum for a sum). The framework does
/// not verify this.
pub trait Combiner: Send + Sync {
    /// Fold one map task's output. Called at most once per map attempt,
    /// with pairs in emission order; returns the pairs to shuffle.
    fn combine(&self, pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)>;
}

/// User reduce logic. Invoked once per distinct key with all of that key's
/// values, in map-completion order.
pub trait Reducer: Send + Sync {
    /// Produce output pairs for one key group.
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>);
}

/// The identity reducer: passes every value through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>) {
        output.extend(values.iter().map(|v| (Key::clone(key), v.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel, Value};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;

    fn small_dataset() -> (Namespace, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(11);
        let spec = DatasetSpec::small("t", 8, 500, SkewLevel::Moderate, 11);
        let ds = Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng);
        (ns, Arc::new(ds))
    }

    #[test]
    fn full_and_planted_modes_agree_on_matches() {
        let (_, ds) = small_dataset();
        let pred = ds.factory();
        let full = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full);
        let planted = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Planted);
        use incmr_data::generator::RecordFactory;
        let p = pred.predicate();
        for plan in ds.splits() {
            let SplitData::Records(all) = full.read(plan.block) else {
                panic!()
            };
            let SplitData::Planted {
                total_records,
                matches,
            } = planted.read(plan.block)
            else {
                panic!()
            };
            assert_eq!(total_records, all.len() as u64);
            let filtered: Vec<&Record> = all.iter().filter(|r| p.eval(r)).collect();
            assert_eq!(filtered.len(), matches.len());
            assert!(filtered.iter().zip(&matches).all(|(a, b)| *a == b));
        }
    }

    #[test]
    fn split_data_total_records() {
        let d = SplitData::Records(vec![Record::new(vec![Value::Int(1)])]);
        assert_eq!(d.total_records(), 1);
        let d = SplitData::Planted {
            total_records: 99,
            matches: vec![],
        };
        assert_eq!(d.total_records(), 99);
    }

    #[test]
    fn identity_reducer_passes_values_through() {
        let r = IdentityReducer;
        let vals = vec![
            Record::new(vec![Value::Int(1)]),
            Record::new(vec![Value::Int(2)]),
        ];
        let mut out = Vec::new();
        r.reduce(&Key::from("k"), &vals, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(k, _)| &**k == "k"));
    }
}
