//! Execution interfaces: what user code plugs into the framework.
//!
//! Mirrors Hadoop's black-box contract (paper Section II-A): the framework
//! knows nothing about what a [`Mapper`] or [`Reducer`] does — it feeds the
//! mapper a split's data and collects `(key, value)` pairs. Keys are
//! strings (the sampling job uses a single dummy key so all candidates meet
//! in one reduce group); values are [`Record`]s.
//!
//! [`InputFormat`] abstracts where split data comes from.
//! [`DatasetInputFormat`] binds it to an `incmr-data` dataset with a chosen
//! [`ScanMode`] — `Full` materialises every record, `Planted` only the
//! predicate-matching ones (see the `incmr-data::generator` docs for why
//! the two are interchangeable).
//!
//! All traits here are `Send + Sync`: the runtime's data plane executes
//! map- and reduce-task record work on a persistent worker pool (see
//! `crate::parallel`), so user logic must be shareable across threads.
//! Implementations take `&self` and the built-ins hold only immutable
//! state, so this costs nothing in practice.
//!
//! Keys are interned as [`Key`] (`Arc<str>`) end-to-end — mappers typically
//! emit many pairs under few distinct keys (the sampling job uses a single
//! dummy key), so sharing one allocation per distinct key instead of one
//! `String` per pair removes the dominant allocation on the shuffle path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use incmr_data::{BatchSelection, Dataset, Record, RecordBatch, SplitGenerator};
use incmr_dfs::BlockId;

/// An interned map-output key. Cloning is a reference-count bump, so a
/// mapper emitting a million pairs under one key performs one allocation.
pub type Key = Arc<str>;

/// The contents of one input split as handed to a mapper.
///
/// The batch variants are the hot path: the split travels as a shared
/// columnar [`RecordBatch`] (an `Arc` bump per read once cached), and a
/// batch-aware mapper answers with selection vectors into it instead of
/// materialised records. The row variants remain for exotic mappers and as
/// the reference path equivalence tests compare against; a legacy mapper
/// handed a batch can fall back through [`SplitData::into_rows`].
#[derive(Debug, Clone)]
pub enum SplitData {
    /// Every record, in position order (row-materialised reference path).
    Records(Vec<Record>),
    /// Only the records known to match the dataset's planted predicate,
    /// plus the total count the split holds.
    Planted {
        /// Total records in the split (matching + filler).
        total_records: u64,
        /// The matching records, in scan order.
        matches: Vec<Record>,
    },
    /// Every record, columnar — shared, never copied per read.
    Batch(Arc<RecordBatch>),
    /// Only the planted matches, columnar.
    PlantedBatch {
        /// Total records in the split (matching + filler).
        total_records: u64,
        /// The matching records, in scan order.
        matches: Arc<RecordBatch>,
    },
}

impl SplitData {
    /// Total records this split represents.
    pub fn total_records(&self) -> u64 {
        match self {
            SplitData::Records(rs) => rs.len() as u64,
            SplitData::Planted { total_records, .. } => *total_records,
            SplitData::Batch(b) => b.len() as u64,
            SplitData::PlantedBatch { total_records, .. } => *total_records,
        }
    }

    /// Collapse to the row-oriented variants, materialising batch contents.
    /// The compatibility shim for mappers without a batch arm — costs one
    /// `Record` per row, exactly what the batched path avoids.
    pub fn into_rows(self) -> SplitData {
        match self {
            SplitData::Batch(b) => SplitData::Records(b.to_records()),
            SplitData::PlantedBatch {
                total_records,
                matches,
            } => SplitData::Planted {
                total_records,
                matches: matches.to_records(),
            },
            rows => rows,
        }
    }
}

/// How a [`DatasetInputFormat`] materialises split contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Hand over every record as a shared columnar batch (the default
    /// full-scan path).
    Full,
    /// Only the planted matches, as a shared columnar batch (large
    /// simulated runs).
    Planted,
    /// Every record, row-materialised on each read — the legacy reference
    /// path the determinism suite compares `Full` against.
    FullRows,
    /// Only the planted matches, row-materialised on each read.
    PlantedRows,
}

/// Source of split contents, keyed by DFS block. `Send + Sync` so reads can
/// run on the data-plane worker pool.
pub trait InputFormat: Send + Sync {
    /// Materialise the contents of `block`.
    fn read(&self, block: BlockId) -> SplitData;
}

/// Reads splits from a planned [`Dataset`].
///
/// Batch scan modes cache each block's generated [`RecordBatch`]: the first
/// read generates columnar data (zero per-record allocation), and every
/// subsequent read of the same block — re-executions, speculative backups,
/// repeated bench iterations — is a reference-count bump. Generation is a
/// pure function of the block *version*, so a cache hit is byte-identical
/// to a regeneration and a mutated block (new version) misses cleanly; the
/// row modes stay uncached to remain the plain reference path.
pub struct DatasetInputFormat {
    dataset: Arc<Dataset>,
    mode: ScanMode,
    cache: Mutex<HashMap<(BlockId, u32), Arc<RecordBatch>>>,
}

impl DatasetInputFormat {
    /// Bind to a dataset with the given scan mode.
    pub fn new(dataset: Arc<Dataset>, mode: ScanMode) -> Self {
        DatasetInputFormat {
            dataset,
            mode,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.dataset
    }

    fn cached_batch(
        &self,
        block: BlockId,
        version: u32,
        generate: impl Fn() -> RecordBatch,
    ) -> Arc<RecordBatch> {
        let key = (block, version);
        if let Some(hit) = self.cache.lock().expect("batch cache").get(&key) {
            return Arc::clone(hit);
        }
        // Generate outside the lock: concurrent workers may race to build
        // the same block, but generation is pure, so the loser's copy is
        // identical and simply dropped.
        let built = Arc::new(generate());
        let mut cache = self.cache.lock().expect("batch cache");
        Arc::clone(cache.entry(key).or_insert(built))
    }
}

impl InputFormat for DatasetInputFormat {
    fn read(&self, block: BlockId) -> SplitData {
        let plan = self.dataset.plan(block);
        let factory = self.dataset.factory();
        let generator = SplitGenerator::new(&factory, plan.spec);
        match self.mode {
            ScanMode::Full => {
                SplitData::Batch(self.cached_batch(block, plan.version, || generator.full_batch()))
            }
            ScanMode::Planted => SplitData::PlantedBatch {
                total_records: plan.spec.records,
                matches: self.cached_batch(block, plan.version, || generator.planted_batch()),
            },
            ScanMode::FullRows => SplitData::Records(generator.full_iter().collect()),
            ScanMode::PlantedRows => SplitData::Planted {
                total_records: plan.spec.records,
                matches: generator.planted_matches(),
            },
        }
    }
}

/// A keyed run of batch rows: the zero-copy counterpart of a run of
/// `(Key, Record)` pairs sharing one key. Emitting one of these costs a
/// selection vector — no per-record clones, no per-record key interning.
#[derive(Debug, Clone)]
pub struct KeyedBatch {
    /// The key every selected row is emitted under.
    pub key: Key,
    /// The selected (optionally projected) rows.
    pub rows: BatchSelection,
}

impl KeyedBatch {
    /// Serialized bytes this run contributes to shuffle volume — identical
    /// to the row path's per-record `key.len() + record.width()` sum.
    pub fn shuffle_bytes(&self) -> u64 {
        self.rows.len() as u64 * self.key.len() as u64 + self.rows.total_width()
    }

    /// Materialise into classic pairs (the compatibility boundary).
    pub fn into_pairs(self, out: &mut Vec<(Key, Record)>) {
        out.reserve(self.rows.len());
        for i in 0..self.rows.len() {
            out.push((Key::clone(&self.key), self.rows.record(i)));
        }
    }
}

/// Materialise a batch-emitting map output into classic pairs, in emission
/// order.
pub fn batches_to_pairs(batches: Vec<KeyedBatch>) -> Vec<(Key, Record)> {
    let mut out = Vec::with_capacity(batches.iter().map(|b| b.rows.len()).sum());
    for b in batches {
        b.into_pairs(&mut out);
    }
    out
}

/// Output of one map task.
///
/// Besides materialised pairs, a mapper may report *unmaterialised* output:
/// records that exist for accounting purposes (output counts, shuffle
/// volume) but whose contents nobody downstream will look at. Large scan
/// jobs use this so that simulating them does not hold millions of records
/// in memory; the reduce phase still sees the correct record counts and
/// byte volumes.
#[derive(Debug, Clone, Default)]
pub struct MapResult {
    /// Emitted `(key, value)` pairs.
    pub pairs: Vec<(Key, Record)>,
    /// Emitted zero-copy batch-row runs. Emission order is defined as all
    /// of `pairs` first, then every batch's rows in batch order — mappers
    /// emit one kind or the other in practice.
    pub batches: Vec<KeyedBatch>,
    /// Records scanned (feeds selectivity estimation).
    pub records_read: u64,
    /// Output records accounted but not materialised.
    pub unmaterialized_outputs: u64,
    /// Bytes of unmaterialised output (for shuffle-volume modelling).
    pub unmaterialized_bytes: u64,
}

impl MapResult {
    /// Materialised output records (pairs plus batch rows).
    pub fn materialized_records(&self) -> u64 {
        self.pairs.len() as u64
            + self
                .batches
                .iter()
                .map(|b| b.rows.len() as u64)
                .sum::<u64>()
    }

    /// Materialised output bytes (pairs plus batch rows), computed with
    /// the same per-record `key.len() + width` model either way.
    pub fn materialized_bytes(&self) -> u64 {
        let pair_bytes: u64 = self
            .pairs
            .iter()
            .map(|(k, v)| k.len() as u64 + v.width())
            .sum();
        pair_bytes
            + self
                .batches
                .iter()
                .map(KeyedBatch::shuffle_bytes)
                .sum::<u64>()
    }

    /// Total output records, materialised or not.
    pub fn total_outputs(&self) -> u64 {
        self.materialized_records() + self.unmaterialized_outputs
    }

    /// Total output bytes, materialised or not.
    pub fn total_output_bytes(&self) -> u64 {
        self.materialized_bytes() + self.unmaterialized_bytes
    }
}

/// User map logic. Invoked once per split, potentially from a worker
/// thread — implementations must be pure with respect to `&self`.
///
/// `run` takes the split data *by value*: a batch-aware mapper keeps the
/// shared `Arc<RecordBatch>` and emits selections into it, and even a
/// row-oriented mapper can move records it emits instead of cloning them.
pub trait Mapper: Send + Sync {
    /// Process a split and return emitted pairs plus counters.
    fn run(&self, data: SplitData) -> MapResult;
}

/// Optional map-side aggregation, Hadoop's classic combiner: folds one map
/// task's emitted pairs *before* they are partitioned and shuffled. Runs on
/// the data-plane worker right after the mapper, so whatever it removes is
/// never materialised, partitioned, or counted as shuffle volume.
///
/// The contract matches Hadoop's: a combiner must be an optimisation only.
/// The reducer sees combined pairs in emission order, so for any job output
/// to remain well-defined the combiner must preserve the reducer's result
/// (e.g. pre-truncate for a LIMIT, pre-sum for a sum). The framework does
/// not verify this.
pub trait Combiner: Send + Sync {
    /// Fold one map task's output. Called at most once per map attempt,
    /// with pairs in emission order; returns the pairs to shuffle.
    fn combine(&self, pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)>;

    /// Batch-native fold of a map task's zero-copy output. Return
    /// `Ok(folded)` to keep the output columnar; the default hands the
    /// batches back via `Err`, telling the framework to materialise them
    /// into pairs and fall back to [`Combiner::combine`]. An `Ok` result
    /// must represent the same logical record stream the pair path would
    /// produce.
    fn combine_batches(
        &self,
        batches: Vec<KeyedBatch>,
    ) -> Result<Vec<KeyedBatch>, Vec<KeyedBatch>> {
        Err(batches)
    }
}

/// User reduce logic. Invoked once per distinct key with all of that key's
/// values, in map-completion order.
pub trait Reducer: Send + Sync {
    /// Produce output pairs for one key group.
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>);
}

/// The identity reducer: passes every value through unchanged.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(&self, key: &Key, values: &[Record], output: &mut Vec<(Key, Record)>) {
        output.extend(values.iter().map(|v| (Key::clone(key), v.clone())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incmr_data::{DatasetSpec, SkewLevel, Value};
    use incmr_dfs::{ClusterTopology, EvenRoundRobin, Namespace};
    use incmr_simkit::rng::DetRng;

    fn small_dataset() -> (Namespace, Arc<Dataset>) {
        let mut ns = Namespace::new(ClusterTopology::paper_cluster());
        let mut rng = DetRng::seed_from(11);
        let spec = DatasetSpec::small("t", 8, 500, SkewLevel::Moderate, 11);
        let ds = Dataset::build(&mut ns, spec, &mut EvenRoundRobin::new(), &mut rng);
        (ns, Arc::new(ds))
    }

    #[test]
    fn full_and_planted_modes_agree_on_matches() {
        let (_, ds) = small_dataset();
        let pred = ds.factory();
        let full = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full);
        let planted = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Planted);
        use incmr_data::generator::RecordFactory;
        let p = pred.predicate();
        for plan in ds.splits() {
            let SplitData::Records(all) = full.read(plan.block).into_rows() else {
                panic!()
            };
            let SplitData::Planted {
                total_records,
                matches,
            } = planted.read(plan.block).into_rows()
            else {
                panic!()
            };
            assert_eq!(total_records, all.len() as u64);
            let filtered: Vec<&Record> = all.iter().filter(|r| p.eval(r)).collect();
            assert_eq!(filtered.len(), matches.len());
            assert!(filtered.iter().zip(&matches).all(|(a, b)| *a == b));
        }
    }

    #[test]
    fn batch_modes_match_row_reference_modes() {
        let (_, ds) = small_dataset();
        for (batch_mode, row_mode) in [
            (ScanMode::Full, ScanMode::FullRows),
            (ScanMode::Planted, ScanMode::PlantedRows),
        ] {
            let batched = DatasetInputFormat::new(Arc::clone(&ds), batch_mode);
            let rows = DatasetInputFormat::new(Arc::clone(&ds), row_mode);
            for plan in ds.splits() {
                let a = batched.read(plan.block);
                assert!(
                    matches!(a, SplitData::Batch(_) | SplitData::PlantedBatch { .. }),
                    "batch modes hand out columnar splits"
                );
                let a = a.into_rows();
                let b = rows.read(plan.block);
                match (a, b) {
                    (SplitData::Records(x), SplitData::Records(y)) => assert_eq!(x, y),
                    (
                        SplitData::Planted {
                            total_records: tx,
                            matches: x,
                        },
                        SplitData::Planted {
                            total_records: ty,
                            matches: y,
                        },
                    ) => {
                        assert_eq!(tx, ty);
                        assert_eq!(x, y);
                    }
                    other => panic!("variant mismatch: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn batch_reads_share_one_generation() {
        let (_, ds) = small_dataset();
        let input = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full);
        let block = ds.splits()[0].block;
        let SplitData::Batch(a) = input.read(block) else {
            panic!()
        };
        let SplitData::Batch(b) = input.read(block) else {
            panic!()
        };
        assert!(Arc::ptr_eq(&a, &b), "second read is a cache hit");
    }

    #[test]
    fn split_data_total_records() {
        let d = SplitData::Records(vec![Record::new(vec![Value::Int(1)])]);
        assert_eq!(d.total_records(), 1);
        let d = SplitData::Planted {
            total_records: 99,
            matches: vec![],
        };
        assert_eq!(d.total_records(), 99);
        let d = SplitData::PlantedBatch {
            total_records: 7,
            matches: Arc::new(incmr_data::RecordBatch::default()),
        };
        assert_eq!(d.total_records(), 7);
    }

    #[test]
    fn keyed_batch_accounting_matches_materialised_pairs() {
        let (_, ds) = small_dataset();
        let input = DatasetInputFormat::new(Arc::clone(&ds), ScanMode::Full);
        let SplitData::Batch(batch) = input.read(ds.splits()[0].block) else {
            panic!()
        };
        let kb = KeyedBatch {
            key: Key::from("__k__"),
            rows: BatchSelection::all(batch),
        };
        let expect: u64 = {
            let mut pairs = Vec::new();
            kb.clone().into_pairs(&mut pairs);
            pairs.iter().map(|(k, v)| k.len() as u64 + v.width()).sum()
        };
        assert_eq!(kb.shuffle_bytes(), expect);
    }

    #[test]
    fn identity_reducer_passes_values_through() {
        let r = IdentityReducer;
        let vals = vec![
            Record::new(vec![Value::Int(1)]),
            Record::new(vec![Value::Int(2)]),
        ];
        let mut out = Vec::new();
        r.reduce(&Key::from("k"), &vals, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|(k, _)| &**k == "k"));
    }
}
