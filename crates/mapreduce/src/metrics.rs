//! Cluster-wide resource metrics, mirroring the instrumentation of the
//! paper's multi-user experiments: "we monitored the CPU utilization (%)
//! and disk reads (Kbs/sec) at 30 second intervals on each node of the
//! cluster … averaged over the 40 cores and 40 disks" (Section V-D), plus
//! the locality % and slot-occupancy % measurements of Section V-F.

use incmr_simkit::stats::{Sampled, TimeWeighted};
use incmr_simkit::{SimDuration, SimTime};

/// Collects resource-usage series during a run.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    start: SimTime,
    cpu: Sampled,
    disk: Sampled,
    occupied_slots: TimeWeighted,
    total_cores: u32,
    total_disks: u32,
    total_slots: u32,
    local_assignments: u64,
    total_assignments: u64,
}

/// Aggregated report at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsReport {
    /// Mean CPU utilisation across all cores, percent.
    pub cpu_util_pct: f64,
    /// Mean disk-read rate per disk, KB/s.
    pub disk_kb_per_sec: f64,
    /// Percent of map tasks that read their split locally.
    pub locality_pct: f64,
    /// Mean percent of map slots occupied.
    pub slot_occupancy_pct: f64,
}

impl ClusterMetrics {
    /// Start collecting at `start` on a cluster with the given capacities,
    /// sampling resource counters every `interval` (the paper uses 30 s).
    pub fn new(
        start: SimTime,
        total_cores: u32,
        total_disks: u32,
        total_slots: u32,
        interval: SimDuration,
    ) -> Self {
        ClusterMetrics {
            start,
            cpu: Sampled::new(start, interval),
            disk: Sampled::new(start, interval),
            occupied_slots: TimeWeighted::new(start, 0.0),
            total_cores,
            total_disks,
            total_slots,
            local_assignments: 0,
            total_assignments: 0,
        }
    }

    /// Report cumulative resource totals (core-µs of CPU work drained,
    /// bytes read from disk) as of `now`.
    pub fn observe(&mut self, now: SimTime, cpu_core_us_total: f64, disk_bytes_total: f64) {
        self.cpu.observe(now, cpu_core_us_total);
        self.disk.observe(now, disk_bytes_total);
    }

    /// Record a change in the number of occupied map slots.
    pub fn slots_delta(&mut self, now: SimTime, delta: f64) {
        self.occupied_slots.add(now, delta);
    }

    /// Record one task assignment and whether it was data-local.
    pub fn record_assignment(&mut self, local: bool) {
        self.total_assignments += 1;
        if local {
            self.local_assignments += 1;
        }
    }

    /// Number of assignments recorded so far.
    pub fn assignments(&self) -> u64 {
        self.total_assignments
    }

    /// Produce the aggregate report as of `now`.
    pub fn report(&self, now: SimTime) -> MetricsReport {
        let cpu_capacity_us_per_sec = self.total_cores as f64 * 1e6;
        MetricsReport {
            cpu_util_pct: 100.0 * self.cpu.mean_rate() / cpu_capacity_us_per_sec,
            disk_kb_per_sec: self.disk.mean_rate() / 1024.0 / self.total_disks as f64,
            locality_pct: if self.total_assignments == 0 {
                0.0
            } else {
                100.0 * self.local_assignments as f64 / self.total_assignments as f64
            },
            slot_occupancy_pct: 100.0 * self.occupied_slots.mean(now) / self.total_slots as f64,
        }
    }

    /// When collection started.
    pub fn start(&self) -> SimTime {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_disk_rates_normalise_to_capacity() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 40, 40, 40, SimDuration::from_secs(30));
        // 60 s at 20 cores fully busy = 20 × 60 × 1e6 core-us.
        // 60 s of disk reads at 10 MB/s aggregate.
        m.observe(
            SimTime::from_secs(60),
            20.0 * 60.0 * 1e6,
            10.0 * 1024.0 * 1024.0 * 60.0,
        );
        let r = m.report(SimTime::from_secs(60));
        assert!(
            (r.cpu_util_pct - 50.0).abs() < 1e-6,
            "20 of 40 cores = 50%, got {}",
            r.cpu_util_pct
        );
        assert!(
            (r.disk_kb_per_sec - 256.0).abs() < 1e-6,
            "10MB/s over 40 disks = 256KB/s/disk"
        );
    }

    #[test]
    fn locality_percent() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        for i in 0..10 {
            m.record_assignment(i < 7);
        }
        assert!((m.report(SimTime::from_secs(1)).locality_pct - 70.0).abs() < 1e-9);
        assert_eq!(m.assignments(), 10);
    }

    #[test]
    fn locality_of_no_assignments_is_zero() {
        let m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.report(SimTime::from_secs(1)).locality_pct, 0.0);
    }

    #[test]
    fn slot_occupancy_is_time_weighted() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 10, SimDuration::from_secs(30));
        m.slots_delta(SimTime::ZERO, 10.0); // full from t=0
        m.slots_delta(SimTime::from_secs(50), -10.0); // idle from t=50
        let r = m.report(SimTime::from_secs(100));
        assert!((r.slot_occupancy_pct - 50.0).abs() < 1e-9);
    }
}
