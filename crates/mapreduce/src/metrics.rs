//! Cluster-wide resource metrics, mirroring the instrumentation of the
//! paper's multi-user experiments: "we monitored the CPU utilization (%)
//! and disk reads (Kbs/sec) at 30 second intervals on each node of the
//! cluster … averaged over the 40 cores and 40 disks" (Section V-D), plus
//! the locality % and slot-occupancy % measurements of Section V-F.
//!
//! Two extra counter families instrument the streaming shuffle:
//! [`ShuffleMetrics`] (deterministic record/byte counters — combiner
//! effect and partition skew) and [`HostPhaseNanos`] (host wall-clock
//! spent on the data plane per phase). Host timings never feed the trace
//! or any simulated quantity — they vary run to run and across thread
//! counts, while traces must not.

use incmr_simkit::stats::{Sampled, TimeWeighted};
use incmr_simkit::{SimDuration, SimTime};

use crate::trace::{TraceEvent, TraceKind};

/// Deterministic shuffle counters, aggregated across jobs whose shuffle
/// closed inside the metrics window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShuffleMetrics {
    /// Jobs whose shuffle completed (reduce phase began).
    pub jobs: u64,
    /// Records fed to map-side combiners (0 for jobs without one).
    pub combiner_input_records: u64,
    /// Records surviving map-side combiners.
    pub combiner_output_records: u64,
    /// Largest single-partition modeled byte share seen in any job.
    pub max_partition_bytes: u64,
    /// Smallest single-partition modeled byte share seen in any job.
    pub min_partition_bytes: u64,
}

impl ShuffleMetrics {
    /// Records the combiner removed (`input − output`).
    pub fn combined_away(&self) -> u64 {
        self.combiner_input_records
            .saturating_sub(self.combiner_output_records)
    }

    /// Max/min partition byte ratio — 1.0 means perfectly even partitions.
    /// Returns `None` until a job with nonempty partitions is recorded.
    pub fn skew_ratio(&self) -> Option<f64> {
        (self.min_partition_bytes > 0)
            .then(|| self.max_partition_bytes as f64 / self.min_partition_bytes as f64)
    }
}

/// Deterministic fault-plane counters: node churn and the Hadoop-semantics
/// responses (re-execution, speculation, kills, blacklisting). All driven
/// by simulated time and seeded draws, so they are identical across thread
/// counts for a fixed fault schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultMetrics {
    /// Nodes that died (TaskTracker loss).
    pub nodes_lost: u64,
    /// Nodes that rejoined after dying.
    pub nodes_rejoined: u64,
    /// Completed map tasks re-executed because their node (and its stored
    /// map output) was lost.
    pub maps_reexecuted: u64,
    /// Speculative attempts launched for laggard maps.
    pub speculative_launched: u64,
    /// Speculative races where the loser was killed after the winner
    /// committed (launched − wasted = races the backup won or inherited).
    pub speculative_wasted: u64,
    /// Attempts killed (node death or losing a speculative race) — these
    /// never count against a task's attempt budget.
    pub attempts_killed: u64,
    /// Reduce attempts failed by fault injection.
    pub reduce_failures: u64,
    /// (job, node) blacklist entries created.
    pub nodes_blacklisted: u64,
}

impl FaultMetrics {
    /// Recompute the trace-derivable counters from an exported trace. The
    /// counters with no dedicated trace event (`maps_reexecuted`,
    /// `speculative_wasted`, `attempts_killed` — reduce attempts killed by
    /// node death release no `AttemptKilled` event) stay zero; compare
    /// against [`FaultMetrics::derivable`] of the live counters.
    pub fn from_trace(events: &[TraceEvent]) -> FaultMetrics {
        let mut m = FaultMetrics::default();
        for e in events {
            match e.kind {
                TraceKind::NodeLost { .. } => m.nodes_lost += 1,
                TraceKind::NodeRejoined { .. } => m.nodes_rejoined += 1,
                TraceKind::SpeculativeLaunch { .. } => m.speculative_launched += 1,
                TraceKind::ReduceFailed { .. } => m.reduce_failures += 1,
                TraceKind::NodeBlacklisted { .. } => m.nodes_blacklisted += 1,
                _ => {}
            }
        }
        m
    }

    /// This counter set restricted to the fields [`FaultMetrics::from_trace`]
    /// can recompute (the rest zeroed), for direct equality checks.
    pub fn derivable(&self) -> FaultMetrics {
        FaultMetrics {
            nodes_lost: self.nodes_lost,
            nodes_rejoined: self.nodes_rejoined,
            maps_reexecuted: 0,
            speculative_launched: self.speculative_launched,
            speculative_wasted: 0,
            attempts_killed: 0,
            reduce_failures: self.reduce_failures,
            nodes_blacklisted: self.nodes_blacklisted,
        }
    }
}

/// Deterministic guard-rail counters: how often the runtime had to defend
/// itself against misbehaving job-supplied logic (Input Providers, growth
/// drivers) or enforce job deadlines. Like [`FaultMetrics`], these are
/// driven purely by simulated time, so they are identical across thread
/// counts for a fixed schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardrailMetrics {
    /// Provider/driver invocations that panicked (caught by the sandbox).
    pub provider_panics: u64,
    /// Provider failures of any kind (panics plus invalid directives).
    pub provider_errors: u64,
    /// `AddInput` directives naming a block outside the namespace.
    pub unknown_blocks: u64,
    /// Provider failures absorbed by the job's retry budget.
    pub provider_retries: u64,
    /// Splits dropped because the job already claimed them (duplicate
    /// `AddInput` entries, within or across directives).
    pub duplicate_splits_dropped: u64,
    /// `AddInput` directives truncated to the driver's grab limit.
    pub grab_limit_clamps: u64,
    /// Jobs terminated by the idle-evaluation (livelock) watchdog.
    pub jobs_wedged: u64,
    /// Jobs whose simulated-time deadline expired (failed or degraded to
    /// a partial result, depending on `mapred.job.allow.partial`).
    pub deadlines_exceeded: u64,
    /// Sampling jobs that completed with fewer than `k` matches.
    pub partial_samples: u64,
}

impl GuardrailMetrics {
    /// Recompute the trace-derivable counters from an exported trace.
    /// `provider_panics` and `unknown_blocks` have no dedicated trace
    /// event (both surface as `ProviderFault`) and stay zero; compare
    /// against [`GuardrailMetrics::derivable`] of the live counters.
    pub fn from_trace(events: &[TraceEvent]) -> GuardrailMetrics {
        let mut m = GuardrailMetrics::default();
        for e in events {
            match e.kind {
                TraceKind::ProviderFault { fatal, .. } => {
                    m.provider_errors += 1;
                    if !fatal {
                        m.provider_retries += 1;
                    }
                }
                TraceKind::DuplicateInputDropped { splits, .. } => {
                    m.duplicate_splits_dropped += splits as u64
                }
                TraceKind::GrabLimitClamped { .. } => m.grab_limit_clamps += 1,
                TraceKind::JobWedged { .. } => m.jobs_wedged += 1,
                TraceKind::DeadlineExceeded { .. } => m.deadlines_exceeded += 1,
                TraceKind::PartialSample { .. } => m.partial_samples += 1,
                _ => {}
            }
        }
        m
    }

    /// This counter set restricted to the fields
    /// [`GuardrailMetrics::from_trace`] can recompute (the rest zeroed),
    /// for direct equality checks.
    pub fn derivable(&self) -> GuardrailMetrics {
        GuardrailMetrics {
            provider_panics: 0,
            provider_errors: self.provider_errors,
            unknown_blocks: 0,
            provider_retries: self.provider_retries,
            duplicate_splits_dropped: self.duplicate_splits_dropped,
            grab_limit_clamps: self.grab_limit_clamps,
            jobs_wedged: self.jobs_wedged,
            deadlines_exceeded: self.deadlines_exceeded,
            partial_samples: self.partial_samples,
        }
    }
}

/// Deterministic memoization-plane counters: how the incremental
/// recomputation machinery classified splits and what reuse saved. Driven
/// purely by simulated scheduling, so they are identical across thread
/// counts for a fixed evolve schedule.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoMetrics {
    /// Map attempts satisfied from the memo store (host recomputation
    /// skipped; the simulated schedule was preserved).
    pub splits_reused: u64,
    /// Splits whose memo entry existed at a stale block version and were
    /// recomputed.
    pub splits_dirty: u64,
    /// Map attempts that ran the mapper for real while memoization was
    /// enabled (new splits, dirty splits, and invalidated entries).
    pub splits_computed: u64,
    /// Evolve steps that delivered new blocks while jobs were live.
    pub input_arrivals: u64,
    /// Input records whose re-scan a memo hit avoided.
    pub records_saved: u64,
    /// Memo entries discarded because the node holding the cached map
    /// output died.
    pub entries_invalidated: u64,
}

impl MemoMetrics {
    /// Recompute the trace-derivable counters from an exported trace.
    /// `splits_computed` and `entries_invalidated` have no dedicated
    /// trace event (computation is visible only as the *absence* of
    /// `SplitReused` on a finished map) and stay zero; compare against
    /// [`MemoMetrics::derivable`] of the live counters.
    pub fn from_trace(events: &[TraceEvent]) -> MemoMetrics {
        let mut m = MemoMetrics::default();
        for e in events {
            match e.kind {
                TraceKind::SplitReused { .. } => m.splits_reused += 1,
                TraceKind::SplitDirty { .. } => m.splits_dirty += 1,
                TraceKind::InputArrived { .. } => m.input_arrivals += 1,
                _ => {}
            }
        }
        m
    }

    /// This counter set restricted to the fields [`MemoMetrics::from_trace`]
    /// can recompute (the rest zeroed), for direct equality checks.
    pub fn derivable(&self) -> MemoMetrics {
        MemoMetrics {
            splits_reused: self.splits_reused,
            splits_dirty: self.splits_dirty,
            splits_computed: 0,
            input_arrivals: self.input_arrivals,
            records_saved: 0,
            entries_invalidated: 0,
        }
    }
}

/// Deterministic replication-plane counters: replica loss under
/// DataNode-death semantics, read failover, re-replication repair, and the
/// survival accounting the chaos suite asserts on. Driven purely by
/// simulated time and the fault schedule, so they are identical across
/// thread counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaMetrics {
    /// Individual replicas stripped because their DataNode died.
    pub replicas_lost: u64,
    /// Replicas recreated by the re-replication daemon.
    pub replicas_restored: u64,
    /// Map reads that failed over from their intended replica to a
    /// surviving one.
    pub read_failovers: u64,
    /// Blocks that lost their *last* replica (unreadable until rewritten).
    pub blocks_lost: u64,
    /// Jobs that hit the input-lost path (failed, or degraded to a partial
    /// result under `mapred.job.allow.partial`).
    pub input_lost_jobs: u64,
    /// Completed maps on a dead node whose re-execution was skipped
    /// because a live replica of their input block survives (the merged
    /// shuffle output is retained).
    pub reexecutions_avoided: u64,
    /// Memo entries moved from a dead holder to a surviving replica holder
    /// instead of being invalidated.
    pub memo_rehomed: u64,
}

impl ReplicaMetrics {
    /// Recompute the trace-derivable counters from an exported trace.
    /// `blocks_lost`, `reexecutions_avoided`, and `memo_rehomed` have no
    /// dedicated trace event and stay zero; compare against
    /// [`ReplicaMetrics::derivable`] of the live counters.
    pub fn from_trace(events: &[TraceEvent]) -> ReplicaMetrics {
        let mut m = ReplicaMetrics::default();
        for e in events {
            match e.kind {
                TraceKind::ReplicaLost { .. } => m.replicas_lost += 1,
                TraceKind::ReplicaRestored { .. } => m.replicas_restored += 1,
                TraceKind::ReadFailover { .. } => m.read_failovers += 1,
                TraceKind::InputLost { .. } => m.input_lost_jobs += 1,
                _ => {}
            }
        }
        m
    }

    /// This counter set restricted to the fields
    /// [`ReplicaMetrics::from_trace`] can recompute (the rest zeroed), for
    /// direct equality checks.
    pub fn derivable(&self) -> ReplicaMetrics {
        ReplicaMetrics {
            replicas_lost: self.replicas_lost,
            replicas_restored: self.replicas_restored,
            read_failovers: self.read_failovers,
            blocks_lost: 0,
            input_lost_jobs: self.input_lost_jobs,
            reexecutions_avoided: 0,
            memo_rehomed: 0,
        }
    }
}

/// Host-side wall-clock nanoseconds spent on data-plane work, by phase.
/// Pure observability: these depend on the host and thread count, so they
/// are kept out of traces and all simulated accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HostPhaseNanos {
    /// Inside map units (read + map + combine + partition), summed across
    /// workers.
    pub map_ns: u64,
    /// Control-plane time merging completed maps into shuffle buffers.
    pub shuffle_merge_ns: u64,
    /// Inside reduce units (user reducer over groups), summed across
    /// workers.
    pub reduce_ns: u64,
}

/// Collects resource-usage series during a run.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    start: SimTime,
    cpu: Sampled,
    disk: Sampled,
    occupied_slots: TimeWeighted,
    total_cores: u32,
    total_disks: u32,
    total_slots: u32,
    local_assignments: u64,
    total_assignments: u64,
    shuffle: ShuffleMetrics,
    host: HostPhaseNanos,
    faults: FaultMetrics,
    guardrails: GuardrailMetrics,
    memo: MemoMetrics,
    replica: ReplicaMetrics,
}

/// Aggregated report at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsReport {
    /// Mean CPU utilisation across all cores, percent.
    pub cpu_util_pct: f64,
    /// Mean disk-read rate per disk, KB/s.
    pub disk_kb_per_sec: f64,
    /// Percent of map tasks that read their split locally.
    pub locality_pct: f64,
    /// Mean percent of map slots occupied.
    pub slot_occupancy_pct: f64,
}

impl ClusterMetrics {
    /// Start collecting at `start` on a cluster with the given capacities,
    /// sampling resource counters every `interval` (the paper uses 30 s).
    pub fn new(
        start: SimTime,
        total_cores: u32,
        total_disks: u32,
        total_slots: u32,
        interval: SimDuration,
    ) -> Self {
        ClusterMetrics {
            start,
            cpu: Sampled::new(start, interval),
            disk: Sampled::new(start, interval),
            occupied_slots: TimeWeighted::new(start, 0.0),
            total_cores,
            total_disks,
            total_slots,
            local_assignments: 0,
            total_assignments: 0,
            shuffle: ShuffleMetrics::default(),
            host: HostPhaseNanos::default(),
            faults: FaultMetrics::default(),
            guardrails: GuardrailMetrics::default(),
            memo: MemoMetrics::default(),
            replica: ReplicaMetrics::default(),
        }
    }

    /// Report cumulative resource totals (core-µs of CPU work drained,
    /// bytes read from disk) as of `now`.
    pub fn observe(&mut self, now: SimTime, cpu_core_us_total: f64, disk_bytes_total: f64) {
        self.cpu.observe(now, cpu_core_us_total);
        self.disk.observe(now, disk_bytes_total);
    }

    /// Record a change in the number of occupied map slots.
    pub fn slots_delta(&mut self, now: SimTime, delta: f64) {
        self.occupied_slots.add(now, delta);
    }

    /// Record one task assignment and whether it was data-local.
    pub fn record_assignment(&mut self, local: bool) {
        self.total_assignments += 1;
        if local {
            self.local_assignments += 1;
        }
    }

    /// Number of assignments recorded so far.
    pub fn assignments(&self) -> u64 {
        self.total_assignments
    }

    /// Record one job's closed shuffle: combiner totals and the modeled
    /// byte share of its largest and smallest partitions.
    pub fn record_shuffle(
        &mut self,
        combiner_input_records: u64,
        combiner_output_records: u64,
        max_partition_bytes: u64,
        min_partition_bytes: u64,
    ) {
        let s = &mut self.shuffle;
        s.combiner_input_records += combiner_input_records;
        s.combiner_output_records += combiner_output_records;
        s.max_partition_bytes = s.max_partition_bytes.max(max_partition_bytes);
        s.min_partition_bytes = if s.jobs == 0 {
            min_partition_bytes
        } else {
            s.min_partition_bytes.min(min_partition_bytes)
        };
        s.jobs += 1;
    }

    /// Shuffle counters accumulated so far.
    pub fn shuffle(&self) -> ShuffleMetrics {
        self.shuffle
    }

    /// Add host nanoseconds spent inside a map unit.
    pub fn add_host_map_ns(&mut self, ns: u64) {
        self.host.map_ns += ns;
    }

    /// Add host nanoseconds spent merging a map's output into the shuffle
    /// buffers.
    pub fn add_host_shuffle_merge_ns(&mut self, ns: u64) {
        self.host.shuffle_merge_ns += ns;
    }

    /// Add host nanoseconds spent inside a reduce unit.
    pub fn add_host_reduce_ns(&mut self, ns: u64) {
        self.host.reduce_ns += ns;
    }

    /// Host data-plane time by phase (observability only — nondeterministic
    /// across hosts and thread counts by nature).
    pub fn host_phase_nanos(&self) -> HostPhaseNanos {
        self.host
    }

    /// Mutable fault-plane counters (the runtime bumps these as the fault
    /// state machine fires).
    pub fn faults_mut(&mut self) -> &mut FaultMetrics {
        &mut self.faults
    }

    /// Fault-plane counters accumulated so far.
    pub fn faults(&self) -> FaultMetrics {
        self.faults
    }

    /// Mutable guard-rail counters (the runtime bumps these as provider
    /// sandboxing, directive validation, watchdogs, and deadlines fire).
    pub fn guardrails_mut(&mut self) -> &mut GuardrailMetrics {
        &mut self.guardrails
    }

    /// Guard-rail counters accumulated so far.
    pub fn guardrails(&self) -> GuardrailMetrics {
        self.guardrails
    }

    /// Mutable memoization counters (the runtime bumps these as the memo
    /// store classifies splits).
    pub fn memo_mut(&mut self) -> &mut MemoMetrics {
        &mut self.memo
    }

    /// Memoization counters accumulated so far.
    pub fn memo(&self) -> MemoMetrics {
        self.memo
    }

    /// Mutable replication-plane counters (the runtime bumps these as
    /// replicas are lost, reads fail over, and repairs land).
    pub fn replica_mut(&mut self) -> &mut ReplicaMetrics {
        &mut self.replica
    }

    /// Replication-plane counters accumulated so far.
    pub fn replica(&self) -> ReplicaMetrics {
        self.replica
    }

    /// Produce the aggregate report as of `now`.
    pub fn report(&self, now: SimTime) -> MetricsReport {
        let cpu_capacity_us_per_sec = self.total_cores as f64 * 1e6;
        MetricsReport {
            cpu_util_pct: 100.0 * self.cpu.mean_rate() / cpu_capacity_us_per_sec,
            disk_kb_per_sec: self.disk.mean_rate() / 1024.0 / self.total_disks as f64,
            locality_pct: if self.total_assignments == 0 {
                0.0
            } else {
                100.0 * self.local_assignments as f64 / self.total_assignments as f64
            },
            slot_occupancy_pct: 100.0 * self.occupied_slots.mean(now) / self.total_slots as f64,
        }
    }

    /// When collection started.
    pub fn start(&self) -> SimTime {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_and_disk_rates_normalise_to_capacity() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 40, 40, 40, SimDuration::from_secs(30));
        // 60 s at 20 cores fully busy = 20 × 60 × 1e6 core-us.
        // 60 s of disk reads at 10 MB/s aggregate.
        m.observe(
            SimTime::from_secs(60),
            20.0 * 60.0 * 1e6,
            10.0 * 1024.0 * 1024.0 * 60.0,
        );
        let r = m.report(SimTime::from_secs(60));
        assert!(
            (r.cpu_util_pct - 50.0).abs() < 1e-6,
            "20 of 40 cores = 50%, got {}",
            r.cpu_util_pct
        );
        assert!(
            (r.disk_kb_per_sec - 256.0).abs() < 1e-6,
            "10MB/s over 40 disks = 256KB/s/disk"
        );
    }

    #[test]
    fn locality_percent() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        for i in 0..10 {
            m.record_assignment(i < 7);
        }
        assert!((m.report(SimTime::from_secs(1)).locality_pct - 70.0).abs() < 1e-9);
        assert_eq!(m.assignments(), 10);
    }

    #[test]
    fn locality_of_no_assignments_is_zero() {
        let m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.report(SimTime::from_secs(1)).locality_pct, 0.0);
    }

    #[test]
    fn shuffle_counters_aggregate_across_jobs() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.shuffle().skew_ratio(), None);
        m.record_shuffle(100, 10, 800, 200);
        m.record_shuffle(50, 50, 1000, 500);
        let s = m.shuffle();
        assert_eq!(s.jobs, 2);
        assert_eq!(s.combiner_input_records, 150);
        assert_eq!(s.combiner_output_records, 60);
        assert_eq!(s.combined_away(), 90);
        assert_eq!(s.max_partition_bytes, 1000);
        assert_eq!(s.min_partition_bytes, 200);
        assert!((s.skew_ratio().unwrap() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn host_phase_nanos_accumulate() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        m.add_host_map_ns(10);
        m.add_host_map_ns(5);
        m.add_host_shuffle_merge_ns(3);
        m.add_host_reduce_ns(2);
        assert_eq!(
            m.host_phase_nanos(),
            HostPhaseNanos {
                map_ns: 15,
                shuffle_merge_ns: 3,
                reduce_ns: 2
            }
        );
    }

    #[test]
    fn fault_counters_accumulate() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.faults(), FaultMetrics::default());
        m.faults_mut().nodes_lost += 1;
        m.faults_mut().maps_reexecuted += 3;
        m.faults_mut().attempts_killed += 2;
        let f = m.faults();
        assert_eq!(f.nodes_lost, 1);
        assert_eq!(f.maps_reexecuted, 3);
        assert_eq!(f.attempts_killed, 2);
        assert_eq!(f.speculative_launched, 0);
    }

    #[test]
    fn guardrail_counters_accumulate() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.guardrails(), GuardrailMetrics::default());
        m.guardrails_mut().provider_panics += 1;
        m.guardrails_mut().provider_errors += 2;
        m.guardrails_mut().duplicate_splits_dropped += 5;
        m.guardrails_mut().partial_samples += 1;
        let g = m.guardrails();
        assert_eq!(g.provider_panics, 1);
        assert_eq!(g.provider_errors, 2);
        assert_eq!(g.duplicate_splits_dropped, 5);
        assert_eq!(g.partial_samples, 1);
        assert_eq!(g.jobs_wedged, 0);
    }

    #[test]
    fn counters_recompute_from_trace_events() {
        use crate::job::{JobId, TaskId};
        use incmr_dfs::NodeId;
        let at = |s: u64, kind: TraceKind| TraceEvent {
            time: SimTime::from_secs(s),
            kind,
        };
        let events = vec![
            at(1, TraceKind::NodeLost { node: NodeId(3) }),
            at(
                2,
                TraceKind::SpeculativeLaunch {
                    job: JobId(0),
                    task: TaskId(1),
                    node: NodeId(2),
                },
            ),
            at(3, TraceKind::NodeRejoined { node: NodeId(3) }),
            at(
                4,
                TraceKind::ProviderFault {
                    job: JobId(0),
                    fatal: false,
                },
            ),
            at(
                5,
                TraceKind::DuplicateInputDropped {
                    job: JobId(0),
                    splits: 4,
                },
            ),
            at(
                6,
                TraceKind::ProviderFault {
                    job: JobId(1),
                    fatal: true,
                },
            ),
            at(
                7,
                TraceKind::GrabLimitClamped {
                    job: JobId(0),
                    requested: 9,
                    granted: 4,
                },
            ),
        ];
        let f = FaultMetrics::from_trace(&events);
        assert_eq!(f.nodes_lost, 1);
        assert_eq!(f.nodes_rejoined, 1);
        assert_eq!(f.speculative_launched, 1);
        assert_eq!(f.reduce_failures, 0);
        let g = GuardrailMetrics::from_trace(&events);
        assert_eq!(g.provider_errors, 2);
        assert_eq!(g.provider_retries, 1);
        assert_eq!(g.duplicate_splits_dropped, 4);
        assert_eq!(g.grab_limit_clamps, 1);
        // `derivable` zeroes exactly the fields `from_trace` cannot see.
        let mut live = FaultMetrics::from_trace(&events);
        live.maps_reexecuted = 7;
        live.attempts_killed = 9;
        live.speculative_wasted = 2;
        assert_eq!(live.derivable(), f);
        let mut live = GuardrailMetrics::from_trace(&events);
        live.provider_panics = 3;
        live.unknown_blocks = 1;
        assert_eq!(live.derivable(), g);
    }

    #[test]
    fn memo_counters_accumulate_and_recompute_from_trace() {
        use crate::job::{JobId, TaskId};
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.memo(), MemoMetrics::default());
        m.memo_mut().splits_reused += 2;
        m.memo_mut().records_saved += 500;
        assert_eq!(m.memo().splits_reused, 2);
        assert_eq!(m.memo().records_saved, 500);

        let at = |s: u64, kind: TraceKind| TraceEvent {
            time: SimTime::from_secs(s),
            kind,
        };
        let events = vec![
            at(1, TraceKind::InputArrived { splits: 3 }),
            at(
                2,
                TraceKind::SplitReused {
                    job: JobId(0),
                    task: TaskId(0),
                },
            ),
            at(
                2,
                TraceKind::SplitReused {
                    job: JobId(0),
                    task: TaskId(1),
                },
            ),
            at(
                3,
                TraceKind::SplitDirty {
                    job: JobId(0),
                    task: TaskId(2),
                },
            ),
        ];
        let t = MemoMetrics::from_trace(&events);
        assert_eq!(t.splits_reused, 2);
        assert_eq!(t.splits_dirty, 1);
        assert_eq!(t.input_arrivals, 1);
        let mut live = t;
        live.splits_computed = 4;
        live.records_saved = 99;
        live.entries_invalidated = 1;
        assert_eq!(live.derivable(), t);
    }

    #[test]
    fn replica_counters_accumulate_and_recompute_from_trace() {
        use crate::job::{JobId, TaskId};
        use incmr_dfs::{BlockId, DiskId, NodeId};
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 4, SimDuration::from_secs(30));
        assert_eq!(m.replica(), ReplicaMetrics::default());
        m.replica_mut().replicas_lost += 2;
        m.replica_mut().reexecutions_avoided += 1;
        assert_eq!(m.replica().replicas_lost, 2);
        assert_eq!(m.replica().reexecutions_avoided, 1);

        let at = |s: u64, kind: TraceKind| TraceEvent {
            time: SimTime::from_secs(s),
            kind,
        };
        let events = vec![
            at(
                1,
                TraceKind::ReplicaLost {
                    block: BlockId(0),
                    node: NodeId(1),
                },
            ),
            at(
                1,
                TraceKind::ReplicaLost {
                    block: BlockId(1),
                    node: NodeId(1),
                },
            ),
            at(
                2,
                TraceKind::ReadFailover {
                    job: JobId(0),
                    task: TaskId(3),
                    from: DiskId(4),
                    to: DiskId(0),
                },
            ),
            at(
                3,
                TraceKind::ReplicaRestored {
                    block: BlockId(0),
                    node: NodeId(2),
                },
            ),
            at(
                4,
                TraceKind::InputLost {
                    job: JobId(1),
                    blocks: 2,
                    graceful: false,
                },
            ),
        ];
        let t = ReplicaMetrics::from_trace(&events);
        assert_eq!(t.replicas_lost, 2);
        assert_eq!(t.replicas_restored, 1);
        assert_eq!(t.read_failovers, 1);
        assert_eq!(t.input_lost_jobs, 1);
        let mut live = t;
        live.blocks_lost = 1;
        live.reexecutions_avoided = 3;
        live.memo_rehomed = 2;
        assert_eq!(live.derivable(), t);
    }

    #[test]
    fn slot_occupancy_is_time_weighted() {
        let mut m = ClusterMetrics::new(SimTime::ZERO, 4, 4, 10, SimDuration::from_secs(30));
        m.slots_delta(SimTime::ZERO, 10.0); // full from t=0
        m.slots_delta(SimTime::from_secs(50), -10.0); // idle from t=50
        let r = m.report(SimTime::from_secs(100));
        assert!((r.slot_occupancy_pct - 50.0).abs() < 1e-9);
    }
}
