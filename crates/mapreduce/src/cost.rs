//! The cost model that converts work (bytes, records) into simulated time.
//!
//! The paper reports wall-clock numbers from a physical 10-node cluster; we
//! substitute a calibrated model (see DESIGN.md). Only *relative* behaviour
//! needs to survive the substitution: task durations scale linearly with
//! split size, disk and CPU are shared resources, remote reads cost extra,
//! and task/job fixed overheads are non-trivial (JVM start-up in Hadoop).
//!
//! Defaults are chosen so a 94.5 MB / 750 k-record split takes ≈20 s on an
//! otherwise idle node — in the range of real Hadoop-0.20 map tasks.

/// Cost-model parameters. All rates are per simulated second.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Sequential-read bandwidth of one disk (bytes/s), shared
    /// processor-style among concurrent readers.
    pub disk_bw_bytes_per_sec: f64,
    /// Effective bandwidth of a remote (non-local) block fetch (bytes/s);
    /// applied as a fixed post-read transfer stage per task.
    pub network_bw_bytes_per_sec: f64,
    /// Map-side CPU cost per record, in core-microseconds. CPU is shared
    /// among a node's running tasks via its core count.
    pub map_cpu_us_per_record: f64,
    /// Fixed per-map-task start-up cost (task launch, JVM reuse), ms.
    pub map_task_overhead_ms: u64,
    /// Reduce-side CPU cost per input record, core-microseconds.
    pub reduce_cpu_us_per_record: f64,
    /// Fixed per-reduce overhead (shuffle setup, sort, commit), ms.
    pub reduce_overhead_ms: u64,
    /// Per-TaskTracker heartbeat interval, ms. Hadoop 0.20 uses 3 s on
    /// small clusters; tasks are only assigned at heartbeats, so freed
    /// slots stay observably free in between.
    pub heartbeat_ms: u64,
    /// Map tasks assignable per tracker heartbeat. Hadoop 0.20 assigns
    /// **one** — the launch-rate ceiling behind the paper's low measured
    /// slot occupancies (44% FIFO / 18% Fair on 16-slot nodes).
    pub maps_per_heartbeat: u32,
}

impl CostModel {
    /// The calibrated defaults used by all experiments.
    pub fn paper_default() -> Self {
        CostModel {
            disk_bw_bytes_per_sec: 60.0 * 1024.0 * 1024.0,
            network_bw_bytes_per_sec: 30.0 * 1024.0 * 1024.0,
            map_cpu_us_per_record: 25.0,
            map_task_overhead_ms: 1_000,
            reduce_cpu_us_per_record: 50.0,
            reduce_overhead_ms: 2_000,
            heartbeat_ms: 3_000,
            // Stock 0.20 assigns one map per heartbeat; the paper's tuned
            // Facebook-era deployment sustains more (16 slots per node
            // would otherwise be unreachable) — 4 keeps the cluster
            // slot-limited under load while slots stay observably free
            // between heartbeats.
            maps_per_heartbeat: 4,
        }
    }

    /// Map CPU work for a split, in core-microseconds.
    pub fn map_cpu_work_us(&self, records: u64) -> f64 {
        records as f64 * self.map_cpu_us_per_record
    }

    /// Extra transfer time for a non-local read, in ms.
    pub fn remote_transfer_ms(&self, bytes: u64) -> u64 {
        ((bytes as f64 / self.network_bw_bytes_per_sec) * 1000.0).ceil() as u64
    }

    /// Total reduce duration for the given shuffle volume, in ms.
    pub fn reduce_duration_ms(&self, shuffle_bytes: u64, input_records: u64) -> u64 {
        let transfer = (shuffle_bytes as f64 / self.network_bw_bytes_per_sec) * 1000.0;
        let cpu = input_records as f64 * self.reduce_cpu_us_per_record / 1000.0;
        self.reduce_overhead_ms + (transfer + cpu).ceil() as u64
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_split_takes_roughly_twenty_seconds() {
        let c = CostModel::paper_default();
        let records = 750_000u64;
        let bytes = records * 126;
        let io_s = bytes as f64 / c.disk_bw_bytes_per_sec;
        let cpu_s = c.map_cpu_work_us(records) / 1e6;
        let total = c.map_task_overhead_ms as f64 / 1000.0 + io_s + cpu_s;
        assert!(
            (15.0..=30.0).contains(&total),
            "split cost {total}s drifted out of the calibrated range"
        );
    }

    #[test]
    fn remote_transfer_scales_with_bytes() {
        let c = CostModel::paper_default();
        assert_eq!(c.remote_transfer_ms(0), 0);
        let one = c.remote_transfer_ms(30 * 1024 * 1024);
        assert!(
            (990..=1010).contains(&one),
            "30MB at 30MB/s ≈ 1s, got {one}ms"
        );
        assert!(c.remote_transfer_ms(60 * 1024 * 1024) > one);
    }

    #[test]
    fn reduce_duration_includes_overhead() {
        let c = CostModel::paper_default();
        let d = c.reduce_duration_ms(0, 0);
        assert_eq!(d, c.reduce_overhead_ms);
        assert!(c.reduce_duration_ms(30 * 1024 * 1024, 10_000) > d);
    }
}
