//! The data-plane worker pool: parallel execution of map-task record work.
//!
//! # Two planes, one clock
//!
//! The runtime separates *when* things happen from *what* they compute:
//!
//! * The **control plane** — the simkit discrete-event loop, heartbeats,
//!   schedulers, growth-driver evaluations — stays single-threaded and
//!   deterministic. Simulated time is a pure function of the seed.
//! * The **data plane** — `InputFormat::read` + `Mapper::run` for each
//!   dispatched split — is pure host computation whose *result* feeds the
//!   simulation but whose *duration on the host* is irrelevant to simulated
//!   time (task durations come from the cost model, not wall clock).
//!
//! That split makes parallelism safe: all map tasks dispatched in one
//! scheduling step are computed on a worker pool, then their results are
//! merged back **in assignment order** before the event loop advances. The
//! event queue therefore sees byte-identical state and ordering at any
//! thread count — `threads = 8` only changes how fast the host gets there.
//! `tests/determinism.rs` locks this in.
//!
//! Within a split there is no further chunking: record generation is a
//! sequential PRNG stream (see `incmr-data::generator`), so the unit of
//! parallelism is the split. Wall-clock speedup comes from batches of
//! splits, which is exactly what heavy `ScanMode::Full` scans produce.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use incmr_dfs::BlockId;

use crate::cluster::Parallelism;
use crate::exec::{InputFormat, MapResult, Mapper};

/// One unit of data-plane work: read a split and run the mapper over it.
pub struct MapUnit {
    /// Source of the split's contents.
    pub input_format: Arc<dyn InputFormat>,
    /// Map logic to apply.
    pub mapper: Arc<dyn Mapper>,
    /// The split to process.
    pub block: BlockId,
}

impl MapUnit {
    fn compute(&self) -> MapResult {
        let data = self.input_format.read(self.block);
        self.mapper.run(&data)
    }
}

/// Executes batches of [`MapUnit`]s, serially or on scoped worker threads.
///
/// Results always come back indexed exactly like the input batch, so
/// callers can merge them deterministically regardless of which worker
/// finished first.
#[derive(Debug, Clone, Copy)]
pub struct ParallelExecutor {
    threads: usize,
}

impl ParallelExecutor {
    /// An executor honouring the given parallelism knob.
    pub fn new(parallelism: Parallelism) -> Self {
        ParallelExecutor {
            threads: parallelism.threads.max(1) as usize,
        }
    }

    /// Configured worker count (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Compute every unit and return the results in input order.
    ///
    /// With `threads = 1` (or a batch of one) this runs inline with no
    /// thread machinery at all — the serial reference path.
    pub fn run(&self, units: &[MapUnit]) -> Vec<MapResult> {
        if self.threads == 1 || units.len() <= 1 {
            return units.iter().map(MapUnit::compute).collect();
        }
        let workers = self.threads.min(units.len());
        let next = AtomicUsize::new(0);
        let results: Mutex<Vec<Option<MapResult>>> =
            Mutex::new((0..units.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= units.len() {
                        break;
                    }
                    let result = units[i].compute();
                    results
                        .lock()
                        .expect("worker poisoned results")
                        .as_mut_slice()[i] = Some(result);
                });
            }
        });
        results
            .into_inner()
            .expect("worker poisoned results")
            .into_iter()
            .map(|r| r.expect("every unit computed"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::SplitData;
    use incmr_data::{Record, Value};

    /// Yields `block.0` synthetic records for any block.
    struct CountingInput;

    impl InputFormat for CountingInput {
        fn read(&self, block: BlockId) -> SplitData {
            SplitData::Records(
                (0..block.0)
                    .map(|i| Record::new(vec![Value::Int(i as i64)]))
                    .collect(),
            )
        }
    }

    /// Emits one pair per record, tagged with the record count.
    struct CountMapper;

    impl Mapper for CountMapper {
        fn run(&self, data: &SplitData) -> MapResult {
            let SplitData::Records(rs) = data else {
                panic!()
            };
            MapResult {
                pairs: rs
                    .iter()
                    .map(|r| (format!("n{}", rs.len()), r.clone()))
                    .collect(),
                records_read: rs.len() as u64,
                unmaterialized_outputs: 0,
                unmaterialized_bytes: 0,
            }
        }
    }

    fn units(blocks: &[u32]) -> Vec<MapUnit> {
        let input: Arc<dyn InputFormat> = Arc::new(CountingInput);
        let mapper: Arc<dyn Mapper> = Arc::new(CountMapper);
        blocks
            .iter()
            .map(|&b| MapUnit {
                input_format: Arc::clone(&input),
                mapper: Arc::clone(&mapper),
                block: BlockId(b),
            })
            .collect()
    }

    #[test]
    fn serial_and_parallel_agree_in_order_and_content() {
        let batch = units(&[5, 0, 17, 3, 9, 12, 1, 8]);
        let serial = ParallelExecutor::new(Parallelism::SERIAL).run(&batch);
        for threads in [2, 4, 8] {
            let parallel = ParallelExecutor::new(Parallelism::threads(threads)).run(&batch);
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.records_read, p.records_read);
                assert_eq!(s.pairs, p.pairs);
            }
        }
    }

    #[test]
    fn results_are_indexed_by_unit_not_completion() {
        // Heavily skewed sizes: late units finish long before unit 0 when
        // run concurrently; order must still match the input.
        let batch = units(&[40_000, 1, 2, 3]);
        let out = ParallelExecutor::new(Parallelism::threads(4)).run(&batch);
        assert_eq!(out[0].records_read, 40_000);
        assert_eq!(out[1].records_read, 1);
        assert_eq!(out[2].records_read, 2);
        assert_eq!(out[3].records_read, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(ParallelExecutor::new(Parallelism::threads(8))
            .run(&[])
            .is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let out = ParallelExecutor::new(Parallelism::threads(64)).run(&units(&[2, 4]));
        assert_eq!(out.len(), 2);
    }
}
