//! The data-plane worker pool: parallel execution of map and reduce
//! record work on persistent workers.
//!
//! # Two planes, one clock
//!
//! The runtime separates *when* things happen from *what* they compute:
//!
//! * The **control plane** — the simkit discrete-event loop, heartbeats,
//!   schedulers, growth-driver evaluations — stays single-threaded and
//!   deterministic. Simulated time is a pure function of the seed.
//! * The **data plane** — `InputFormat::read` + `Mapper::run` for each
//!   dispatched split, combining, partitioning, and `Reducer::reduce` over
//!   each partition's groups — is pure host computation whose *result*
//!   feeds the simulation but whose *duration on the host* is irrelevant
//!   to simulated time (task durations come from the cost model, not wall
//!   clock).
//!
//! That split makes parallelism safe: a [`WorkUnit`] is a pure function of
//! its captured inputs, so the control plane submits units as tasks are
//! dispatched, lets the event loop race ahead, and joins each unit's
//! [`UnitHandle`] only at the task's *simulated* completion — always in
//! scheduler order. The event queue therefore sees byte-identical state
//! and ordering at any thread count — `threads = 8` only changes how fast
//! the host gets there. `tests/determinism.rs` locks this in.
//!
//! # Pool lifecycle
//!
//! Workers are spawned once, lazily, on the first submission that needs
//! them (never for `threads = 1`, which computes inline — the serial
//! reference path with zero thread machinery). They block on a shared
//! channel of boxed jobs and live until the executor is dropped, so a
//! scheduling wave costs one channel send per unit instead of a
//! `thread::scope` spawn/join cycle — the per-wave overhead that made
//! extra threads a net loss on small hosts in the PR 1 `BENCH_scan.json`.
//! Each unit delivers its result through its own one-shot channel (no
//! whole-batch `Mutex<Vec<…>>`), so a finished worker never contends with
//! the others, and results are consumed per-slot in whatever order the
//! control plane asks for them.
//!
//! Within a split there is no further chunking: record generation is a
//! sequential PRNG stream (see `incmr-data::generator`), so the unit of
//! parallelism is the split.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use incmr_data::Record;
use incmr_dfs::BlockId;

use crate::cluster::Parallelism;
use crate::exec::{batches_to_pairs, Combiner, InputFormat, Key, Mapper, Reducer};
use crate::shuffle::{PartitionedPairs, ValueSeq};

/// A self-contained piece of data-plane work: consumed once, produces a
/// sendable result. Implementations must be pure functions of their
/// captured state — the control plane relies on a unit computing the same
/// output whether it runs inline, immediately, or long after submission.
pub trait WorkUnit: Send + 'static {
    /// What the unit produces.
    type Output: Send + 'static;
    /// Do the work.
    fn compute(self) -> Self::Output;
}

/// One map task's data-plane work: read a split, run the mapper, apply
/// the optional combiner, and partition the output by reduce task — all
/// on the worker, so the control plane only merges.
pub struct MapUnit {
    /// Source of the split's contents.
    pub input_format: Arc<dyn InputFormat>,
    /// Map logic to apply.
    pub mapper: Arc<dyn Mapper>,
    /// Optional map-side aggregation applied before partitioning.
    pub combiner: Option<Arc<dyn Combiner>>,
    /// The split to process.
    pub block: BlockId,
    /// How many reduce partitions to split the output into.
    pub reduce_tasks: u32,
}

impl Clone for MapUnit {
    fn clone(&self) -> Self {
        MapUnit {
            input_format: Arc::clone(&self.input_format),
            mapper: Arc::clone(&self.mapper),
            combiner: self.combiner.as_ref().map(Arc::clone),
            block: self.block,
            reduce_tasks: self.reduce_tasks,
        }
    }
}

/// Everything a finished map task hands back to the control plane.
#[derive(Debug, Clone, Default)]
pub struct MapTaskResult {
    /// Post-combine output, pre-partitioned by reduce task.
    pub pairs: PartitionedPairs,
    /// Records scanned (feeds selectivity estimation).
    pub records_read: u64,
    /// Materialised output records (post-combine).
    pub materialized_records: u64,
    /// Materialised output bytes (post-combine).
    pub materialized_bytes: u64,
    /// Output records accounted but not materialised.
    pub unmaterialized_outputs: u64,
    /// Bytes of unmaterialised output (for shuffle-volume modelling).
    pub unmaterialized_bytes: u64,
    /// Records fed to the combiner (0 when the job has none).
    pub combiner_input_records: u64,
    /// Records surviving the combiner (0 when the job has none).
    pub combiner_output_records: u64,
    /// Host nanoseconds spent computing this unit (observability only —
    /// never feeds simulated time or the trace).
    pub host_ns: u64,
}

impl MapTaskResult {
    /// Total output records, materialised or not (post-combine).
    pub fn total_outputs(&self) -> u64 {
        self.materialized_records + self.unmaterialized_outputs
    }

    /// Total output bytes, materialised or not (post-combine).
    pub fn total_output_bytes(&self) -> u64 {
        self.materialized_bytes + self.unmaterialized_bytes
    }
}

impl WorkUnit for MapUnit {
    type Output = MapTaskResult;

    fn compute(self) -> MapTaskResult {
        let start = Instant::now();
        let data = self.input_format.read(self.block);
        let mut result = self.mapper.run(data);
        let (combiner_input_records, combiner_output_records) = match &self.combiner {
            Some(combiner) => {
                let before = result.materialized_records();
                if result.pairs.is_empty() && !result.batches.is_empty() {
                    // Pure batch output: try the combiner's zero-copy fold
                    // first; a combiner without one hands the batches back
                    // and we materialise into the classic pair path.
                    match combiner.combine_batches(std::mem::take(&mut result.batches)) {
                        Ok(folded) => result.batches = folded,
                        Err(batches) => {
                            result.pairs = combiner.combine(batches_to_pairs(batches));
                        }
                    }
                } else {
                    // Row (or mixed) output: flatten any batches into the
                    // pair stream in emission order and fold once.
                    let mut pairs = std::mem::take(&mut result.pairs);
                    if !result.batches.is_empty() {
                        pairs.extend(batches_to_pairs(std::mem::take(&mut result.batches)));
                    }
                    result.pairs = combiner.combine(pairs);
                }
                (before, result.materialized_records())
            }
            None => (0, 0),
        };
        let materialized_records = result.materialized_records();
        let materialized_bytes = result.materialized_bytes();
        MapTaskResult {
            pairs: PartitionedPairs::build_with_batches(
                result.pairs,
                result.batches,
                self.reduce_tasks,
            ),
            records_read: result.records_read,
            materialized_records,
            materialized_bytes,
            unmaterialized_outputs: result.unmaterialized_outputs,
            unmaterialized_bytes: result.unmaterialized_bytes,
            combiner_input_records,
            combiner_output_records,
            host_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// One reduce task's data-plane work: run the user reducer over every key
/// group of one partition, in first-seen key order.
pub struct ReduceUnit {
    /// Reduce logic to apply.
    pub reducer: Arc<dyn Reducer>,
    /// Distinct keys in first-seen order.
    pub key_order: Vec<Key>,
    /// Values per key, in arrival order. Batch segments stay zero-copy
    /// until this unit materialises them — the reduce boundary is where
    /// rows come back into existence.
    pub groups: HashMap<Key, ValueSeq>,
}

/// What a finished reduce task hands back.
#[derive(Debug, Clone, Default)]
pub struct ReduceTaskResult {
    /// The reducer's output pairs, in key-group order.
    pub output: Vec<(Key, Record)>,
    /// Host nanoseconds spent computing this unit (observability only).
    pub host_ns: u64,
}

impl WorkUnit for ReduceUnit {
    type Output = ReduceTaskResult;

    fn compute(self) -> ReduceTaskResult {
        let start = Instant::now();
        let mut output = Vec::new();
        for key in &self.key_order {
            let values = self.groups[key].to_rows();
            self.reducer.reduce(key, &values, &mut output);
        }
        ReduceTaskResult {
            output,
            host_ns: start.elapsed().as_nanos() as u64,
        }
    }
}

/// A claim on one submitted unit's result.
///
/// Serial executors resolve the handle at submission (the unit ran
/// inline); pooled executors hold the receiving end of the unit's
/// one-shot result channel. Either way, [`join`](UnitHandle::join) yields
/// the result exactly once, blocking only if a worker is still computing.
#[derive(Debug)]
pub struct UnitHandle<T>(HandleState<T>);

#[derive(Debug)]
enum HandleState<T> {
    Ready(T),
    Pending(mpsc::Receiver<T>),
}

impl<T> UnitHandle<T> {
    fn ready(value: T) -> Self {
        UnitHandle(HandleState::Ready(value))
    }

    fn pending(rx: mpsc::Receiver<T>) -> Self {
        UnitHandle(HandleState::Pending(rx))
    }

    /// Wait for and take the unit's result.
    pub fn join(self) -> T {
        match self.0 {
            HandleState::Ready(value) => value,
            HandleState::Pending(rx) => rx.recv().expect("data-plane worker delivers its result"),
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// The persistent workers: spawned once, fed over a shared channel, joined
/// on drop.
struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    fn spawn(threads: usize) -> Self {
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("incmr-data-plane-{i}"))
                    .spawn(move || loop {
                        // Hold the lock only while waiting for the next
                        // job, never while running one.
                        let job = receiver
                            .lock()
                            .expect("data-plane queue never poisoned")
                            .recv();
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // executor dropped: retire
                        }
                    })
                    .expect("spawn data-plane worker")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
        }
    }

    fn execute(&self, job: Job) {
        self.sender
            .as_ref()
            .expect("pool sender live until drop")
            .send(job)
            .expect("data-plane workers alive");
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.sender.take(); // disconnect: workers drain the queue and exit
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Executes [`WorkUnit`]s, inline (`threads = 1`) or on the persistent
/// worker pool.
///
/// Results come back through per-unit [`UnitHandle`]s, so callers join
/// them in whatever (deterministic) order the control plane needs,
/// regardless of which worker finished first.
pub struct ParallelExecutor {
    threads: usize,
    pool: Option<WorkerPool>,
}

impl std::fmt::Debug for ParallelExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelExecutor")
            .field("threads", &self.threads)
            .field("pool_spawned", &self.pool.is_some())
            .finish()
    }
}

impl ParallelExecutor {
    /// An executor honouring the given parallelism knob.
    pub fn new(parallelism: Parallelism) -> Self {
        ParallelExecutor {
            threads: parallelism.threads.max(1) as usize,
            pool: None,
        }
    }

    /// Configured worker count (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit one unit for computation.
    ///
    /// With `threads = 1` the unit is computed inline before this returns
    /// and the handle is already resolved. Otherwise it is queued on the
    /// pool (spawned on first use) and the handle's `join` blocks until a
    /// worker delivers the result.
    pub fn submit<U: WorkUnit>(&mut self, unit: U) -> UnitHandle<U::Output> {
        if self.threads == 1 {
            return UnitHandle::ready(unit.compute());
        }
        let threads = self.threads;
        let pool = self.pool.get_or_insert_with(|| WorkerPool::spawn(threads));
        let (tx, rx) = mpsc::channel();
        pool.execute(Box::new(move || {
            // The control plane may have dropped the handle (failed task
            // attempt); a closed channel is fine.
            let _ = tx.send(unit.compute());
        }));
        UnitHandle::pending(rx)
    }

    /// Compute a whole batch and return the results in input order.
    pub fn run<U: WorkUnit>(&mut self, units: Vec<U>) -> Vec<U::Output> {
        let handles: Vec<UnitHandle<U::Output>> =
            units.into_iter().map(|u| self.submit(u)).collect();
        handles.into_iter().map(UnitHandle::join).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{MapResult, SplitData};
    use incmr_data::{Record, Value};

    /// Yields `block.0` synthetic records for any block.
    struct CountingInput;

    impl InputFormat for CountingInput {
        fn read(&self, block: BlockId) -> SplitData {
            SplitData::Records(
                (0..block.0)
                    .map(|i| Record::new(vec![Value::Int(i as i64)]))
                    .collect(),
            )
        }
    }

    /// Emits one pair per record, tagged with the record count.
    struct CountMapper;

    impl Mapper for CountMapper {
        fn run(&self, data: SplitData) -> MapResult {
            let SplitData::Records(rs) = data else {
                panic!()
            };
            let key = Key::from(format!("n{}", rs.len()));
            let records_read = rs.len() as u64;
            MapResult {
                pairs: rs.into_iter().map(|r| (Key::clone(&key), r)).collect(),
                records_read,
                ..MapResult::default()
            }
        }
    }

    /// Keeps only the first pair of a task's output.
    struct FirstOnly;

    impl Combiner for FirstOnly {
        fn combine(&self, mut pairs: Vec<(Key, Record)>) -> Vec<(Key, Record)> {
            pairs.truncate(1);
            pairs
        }
    }

    fn units(blocks: &[u32]) -> Vec<MapUnit> {
        let input: Arc<dyn InputFormat> = Arc::new(CountingInput);
        let mapper: Arc<dyn Mapper> = Arc::new(CountMapper);
        blocks
            .iter()
            .map(|&b| MapUnit {
                input_format: Arc::clone(&input),
                mapper: Arc::clone(&mapper),
                combiner: None,
                block: BlockId(b),
                reduce_tasks: 1,
            })
            .collect()
    }

    fn flat_pairs(r: &MapTaskResult) -> Vec<(Key, Record)> {
        let mut state = crate::shuffle::ShuffleState::new(r.pairs.reduce_tasks() as u32, u64::MAX);
        state.merge(r.pairs.clone());
        let mut out = Vec::new();
        for buffer in state.into_buffers() {
            let mut groups = buffer.groups;
            for key in buffer.key_order {
                for v in groups.remove(&key).unwrap().to_rows() {
                    out.push((Key::clone(&key), v));
                }
            }
        }
        out
    }

    #[test]
    fn serial_and_parallel_agree_in_order_and_content() {
        let batch = units(&[5, 0, 17, 3, 9, 12, 1, 8]);
        let serial = ParallelExecutor::new(Parallelism::SERIAL).run(batch.clone());
        for threads in [2, 4, 8] {
            let parallel = ParallelExecutor::new(Parallelism::threads(threads)).run(batch.clone());
            assert_eq!(serial.len(), parallel.len());
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.records_read, p.records_read);
                assert_eq!(flat_pairs(s), flat_pairs(p));
            }
        }
    }

    #[test]
    fn results_are_indexed_by_unit_not_completion() {
        // Heavily skewed sizes: late units finish long before unit 0 when
        // run concurrently; order must still match the input.
        let batch = units(&[40_000, 1, 2, 3]);
        let out = ParallelExecutor::new(Parallelism::threads(4)).run(batch);
        assert_eq!(out[0].records_read, 40_000);
        assert_eq!(out[1].records_read, 1);
        assert_eq!(out[2].records_read, 2);
        assert_eq!(out[3].records_read, 3);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(ParallelExecutor::new(Parallelism::threads(8))
            .run(Vec::<MapUnit>::new())
            .is_empty());
    }

    #[test]
    fn more_threads_than_units_is_fine() {
        let out = ParallelExecutor::new(Parallelism::threads(64)).run(units(&[2, 4]));
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pool_survives_across_batches() {
        let mut exec = ParallelExecutor::new(Parallelism::threads(4));
        for round in 0..5 {
            let out = exec.run(units(&[round, round + 1, round + 2]));
            assert_eq!(out[0].records_read, u64::from(round));
        }
    }

    #[test]
    fn combiner_runs_on_the_worker_and_shrinks_accounting() {
        let mut batch = units(&[10]);
        batch[0].combiner = Some(Arc::new(FirstOnly));
        let out = ParallelExecutor::new(Parallelism::SERIAL).run(batch);
        assert_eq!(out[0].combiner_input_records, 10);
        assert_eq!(out[0].combiner_output_records, 1);
        assert_eq!(out[0].materialized_records, 1);
        assert_eq!(out[0].total_outputs(), 1);
        assert_eq!(out[0].pairs.len(), 1);
    }

    #[test]
    fn reduce_unit_runs_groups_in_key_order() {
        let key_b = Key::from("b");
        let key_a = Key::from("a");
        let mut groups: HashMap<Key, ValueSeq> = HashMap::new();
        groups.insert(
            Key::clone(&key_b),
            vec![
                Record::new(vec![Value::Int(1)]),
                Record::new(vec![Value::Int(2)]),
            ]
            .into_iter()
            .collect(),
        );
        groups.insert(
            Key::clone(&key_a),
            std::iter::once(Record::new(vec![Value::Int(3)])).collect(),
        );
        let unit = ReduceUnit {
            reducer: Arc::new(crate::exec::IdentityReducer),
            key_order: vec![key_b, key_a],
            groups,
        };
        let result = ParallelExecutor::new(Parallelism::threads(2)).run(vec![unit]);
        let keys: Vec<&str> = result[0].output.iter().map(|(k, _)| &**k).collect();
        assert_eq!(keys, ["b", "b", "a"]);
    }

    #[test]
    fn dropped_handles_do_not_wedge_the_pool() {
        let mut exec = ParallelExecutor::new(Parallelism::threads(2));
        // Submit and immediately drop (a failed task attempt does this).
        for unit in units(&[1_000, 1_000]) {
            drop(exec.submit(unit));
        }
        // The pool must still serve later submissions.
        let out = exec.run(units(&[7]));
        assert_eq!(out[0].records_read, 7);
    }
}
