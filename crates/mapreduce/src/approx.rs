//! Error-bounded approximate aggregation (EARL-style early results).
//!
//! The paper's dynamic Input Provider grows a sampling job until `LIMIT k`
//! matches exist. This module supplies the arithmetic for the natural
//! generalisation (`SELECT agg(...) GROUP BY ... WITH ERROR e CONFIDENCE
//! c`): the job's splits are treated as the units of a **uniform cluster
//! sample without replacement**, map tasks emit one per-group observation
//! per split, the runtime folds those observations into per-group
//! accumulators (count / sum / sum-of-squares — see DESIGN.md §15), and a
//! CLT-based probe decides after every completed round whether the
//! configured relative-error bound already holds for *every* group and
//! aggregate at the requested confidence.
//!
//! Everything here is pure arithmetic over deterministic inputs: the fold
//! visits splits in ascending task-id order, so estimates are
//! byte-identical across data-plane thread counts, across warm (memoized)
//! and cold runs, and under fault-induced re-execution.

use std::collections::BTreeMap;

use incmr_simkit::SimTime;

use crate::conf::{keys, ConfError, JobConf};
use crate::exec::Key;
use crate::job::JobId;
use incmr_data::{Record, Value};

/// Splits a probe must see before it may declare the bound met: variance
/// estimates over fewer clusters are too noisy to trust (a lucky first
/// split would otherwise stop the job immediately).
pub const MIN_PROBE_SPLITS: u32 = 4;

/// Default growth-round budget when `mapred.agg.rounds` is absent.
pub const DEFAULT_AGG_ROUNDS: u64 = 16;

/// An estimable aggregate function, as carried in `mapred.agg.funcs`.
///
/// This deliberately mirrors the estimable subset of the HiveQL
/// `AggFunc` — `MIN`/`MAX` have no CLT error bound and are rejected by
/// the compiler before a job is ever built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// `COUNT(*)` / `COUNT(col)` — estimated like a SUM of ones.
    Count,
    /// `SUM(col)` — expansion estimator `T̂ = (M/m)·ΣY_i`.
    Sum,
    /// `AVG(col)` — ratio estimator `R̂ = ΣY_i / Σn_i`.
    Avg,
}

impl AggKind {
    /// Stable wire name used in `mapred.agg.funcs`.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "count",
            AggKind::Sum => "sum",
            AggKind::Avg => "avg",
        }
    }

    /// Parse one wire name.
    pub fn from_name(s: &str) -> Option<AggKind> {
        match s {
            "count" => Some(AggKind::Count),
            "sum" => Some(AggKind::Sum),
            "avg" => Some(AggKind::Avg),
            _ => None,
        }
    }
}

/// Render an aggregate list for `mapred.agg.funcs` (comma separated).
pub fn encode_funcs(funcs: &[AggKind]) -> String {
    funcs.iter().map(|f| f.name()).collect::<Vec<_>>().join(",")
}

/// Parse `mapred.agg.funcs` back into a function list.
pub fn decode_funcs(s: &str) -> Option<Vec<AggKind>> {
    let funcs: Option<Vec<AggKind>> = s.split(',').map(AggKind::from_name).collect();
    funcs.filter(|f| !f.is_empty())
}

// ---------------------------------------------------------------------------
// Per-split observations and their wire encoding
// ---------------------------------------------------------------------------

/// One map task's observation for one group: how many predicate-matching
/// rows of the group the split held (`n`) and the split-local total of
/// each aggregate's argument (`sums[j]`; `COUNT`'s total is `n` itself).
#[derive(Debug, Clone, PartialEq)]
pub struct SplitAggPart {
    /// The group key (the rendered `GROUP BY` value).
    pub group: Key,
    /// Matching rows of this group in this split.
    pub n: u64,
    /// Per-aggregate split totals, aligned with `mapred.agg.funcs`.
    pub sums: Vec<f64>,
}

/// Encode one group observation as the map-output [`Record`] the grouped
/// aggregate mapper emits (`[Int n, Float sum_0, …, Float sum_{k-1}]`).
pub fn encode_group_part(n: u64, sums: &[f64]) -> Record {
    let mut values = Vec::with_capacity(1 + sums.len());
    values.push(Value::Int(n as i64));
    values.extend(sums.iter().map(|&s| Value::Float(s)));
    Record::new(values)
}

/// Decode a map-output record produced by [`encode_group_part`]. Returns
/// `None` when the record does not carry `1 + n_aggs` fields of the
/// expected types (a foreign record — the caller skips it).
pub fn decode_group_part(group: &Key, record: &Record, n_aggs: usize) -> Option<SplitAggPart> {
    if record.arity() != 1 + n_aggs {
        return None;
    }
    let Value::Int(n) = record.get(0) else {
        return None;
    };
    let mut sums = Vec::with_capacity(n_aggs);
    for j in 0..n_aggs {
        let Value::Float(s) = record.get(1 + j) else {
            return None;
        };
        sums.push(*s);
    }
    Some(SplitAggPart {
        group: Key::clone(group),
        n: *n as u64,
        sums,
    })
}

// ---------------------------------------------------------------------------
// Accumulators (the per-group plane DESIGN.md §15 documents)
// ---------------------------------------------------------------------------

/// Per-group accumulator over the splits folded so far: the five running
/// moments the CLT probe needs. A split where the group is absent is a
/// *zero observation* — it contributes nothing to any sum, so folding
/// only the present entries while counting every folded split (`m` in
/// [`evaluate_bound`]) is exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupAccum {
    /// Σ n_i — matching rows (cluster sizes).
    pub c1: f64,
    /// Σ n_i² — for the ratio-estimator variance.
    pub c2: f64,
    /// Σ y_ij per aggregate — split totals.
    pub s1: Vec<f64>,
    /// Σ y_ij² per aggregate — split-total sums of squares.
    pub s2: Vec<f64>,
    /// Σ n_i·y_ij per aggregate — the cross moment.
    pub xy: Vec<f64>,
    /// Splits in which the group actually appeared (diagnostics only).
    pub present: u32,
}

impl GroupAccum {
    fn sized(n_aggs: usize) -> GroupAccum {
        GroupAccum {
            s1: vec![0.0; n_aggs],
            s2: vec![0.0; n_aggs],
            xy: vec![0.0; n_aggs],
            ..GroupAccum::default()
        }
    }

    fn absorb(&mut self, part: &SplitAggPart) {
        let n = part.n as f64;
        self.c1 += n;
        self.c2 += n * n;
        for (j, &y) in part.sums.iter().enumerate() {
            self.s1[j] += y;
            self.s2[j] += y * y;
            self.xy[j] += n * y;
        }
        self.present += 1;
    }
}

/// Fold per-split observations into per-group accumulators.
///
/// The outer `BTreeMap` is keyed by task id, so iteration is ascending —
/// the floating-point accumulation order is a pure function of *which*
/// splits completed, never of when or where their attempts ran.
pub fn fold_parts(
    parts: &BTreeMap<u32, Vec<SplitAggPart>>,
    n_aggs: usize,
) -> BTreeMap<Key, GroupAccum> {
    let mut accums: BTreeMap<Key, GroupAccum> = BTreeMap::new();
    for split_parts in parts.values() {
        for part in split_parts {
            accums
                .entry(Key::clone(&part.group))
                .or_insert_with(|| GroupAccum::sized(n_aggs))
                .absorb(part);
        }
    }
    accums
}

// ---------------------------------------------------------------------------
// The CLT probe
// ---------------------------------------------------------------------------

/// Inverse standard-normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — far below anything the stopping rule can
/// resolve). `p` must lie strictly inside (0, 1).
pub fn z_quantile(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -z_quantile(1.0 - p)
    }
}

/// The result of one stopping-rule evaluation over the folded accumulators.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundEval {
    /// True when every group's every aggregate meets the relative bound.
    pub bound_met: bool,
    /// The worst relative half-width `z·SE/|estimate|` across all groups
    /// and aggregates (0 when no data yet gives a zero SE everywhere;
    /// `f64::INFINITY` when an estimate is 0 with nonzero SE).
    pub worst_rel: f64,
    /// Additional splits projected to bring the worst group under the
    /// bound (`0` once met; at least 1 otherwise).
    pub suggested_splits: u64,
    /// Distinct groups observed so far.
    pub groups: u32,
}

/// Evaluate the stopping rule: with `m` of `total` splits folded into
/// `accums`, does `z(confidence)·SE ≤ error·|estimate|` hold for every
/// group and aggregate?
///
/// Estimators (cluster sampling without replacement, DESIGN.md §15):
/// * `SUM`/`COUNT`: expansion `T̂ = (M/m)·S1`; `SE = M·√(s²_y/m)·√(1−m/M)`
///   with `s²_y = (S2 − S1²/m)/(m−1)`.
/// * `AVG`: ratio `R̂ = S1/C1`; residual variance
///   `s²_d = (S2 − 2R̂·XY + R̂²·C2)/(m−1)`, `SE = √(s²_d/m)·√(1−m/M)/x̄`
///   with `x̄ = C1/m`.
///
/// The finite-population correction `√(1−m/M)` makes a full scan (`m=M`)
/// meet any bound exactly (SE = 0), so the rule degrades gracefully to
/// the exact answer when sampling cannot help.
pub fn evaluate_bound(
    accums: &BTreeMap<Key, GroupAccum>,
    m: u32,
    total: u32,
    funcs: &[AggKind],
    error: f64,
    confidence: f64,
) -> BoundEval {
    let groups = accums.len() as u32;
    let exhausted = m >= total;
    if m < MIN_PROBE_SPLITS.min(total.max(1)) || accums.is_empty() {
        return BoundEval {
            bound_met: exhausted && !accums.is_empty(),
            worst_rel: if exhausted { 0.0 } else { f64::INFINITY },
            suggested_splits: u64::from(MIN_PROBE_SPLITS.saturating_sub(m)).max(1),
            groups,
        };
    }
    let z = z_quantile((1.0 + confidence) / 2.0);
    let mf = m as f64;
    let total_f = total as f64;
    let fpc = (1.0 - mf / total_f).max(0.0);
    let mut worst_rel: f64 = 0.0;
    for acc in accums.values() {
        for (j, &func) in funcs.iter().enumerate() {
            let rel = match func {
                AggKind::Sum | AggKind::Count => {
                    let s1 = acc.s1[j];
                    let var = ((acc.s2[j] - s1 * s1 / mf) / (mf - 1.0)).max(0.0);
                    let se = total_f * (var / mf * fpc).sqrt();
                    let estimate = (total_f / mf) * s1;
                    rel_half_width(z * se, estimate)
                }
                AggKind::Avg => {
                    if acc.c1 <= 0.0 {
                        // No matching rows yet: the group exists in
                        // `accums` only via other aggregates; treat as
                        // unresolved.
                        f64::INFINITY
                    } else {
                        let r = acc.s1[j] / acc.c1;
                        let var = ((acc.s2[j] - 2.0 * r * acc.xy[j] + r * r * acc.c2) / (mf - 1.0))
                            .max(0.0);
                        let xbar = acc.c1 / mf;
                        let se = (var / mf * fpc).sqrt() / xbar;
                        rel_half_width(z * se, r)
                    }
                }
            };
            if rel > worst_rel {
                worst_rel = rel;
            }
        }
    }
    let bound_met = worst_rel <= error;
    let suggested_splits = if bound_met {
        0
    } else if worst_rel.is_finite() {
        // Ignoring the FPC, SE ∝ 1/√m, so m' ≈ m·(rel/e)² splits bring the
        // worst aggregate under the bound.
        let needed = (mf * (worst_rel / error) * (worst_rel / error)).ceil();
        let needed = if needed.is_finite() {
            (needed as u64).min(total as u64)
        } else {
            total as u64
        };
        needed.saturating_sub(m as u64).max(1)
    } else {
        // An unresolved estimate (0 with spread, or an AVG group with no
        // rows): grow by another round and re-probe.
        u64::from(MIN_PROBE_SPLITS)
    };
    BoundEval {
        bound_met,
        worst_rel,
        suggested_splits,
        groups,
    }
}

fn rel_half_width(half: f64, estimate: f64) -> f64 {
    if half == 0.0 {
        0.0
    } else if estimate == 0.0 {
        f64::INFINITY
    } else {
        half / estimate.abs()
    }
}

/// Clamp a relative half-width into the parts-per-million integer carried
/// by `ErrorBoundProbe` trace events (keeps `TraceKind: Eq`).
pub fn rel_to_ppm(rel: f64) -> u64 {
    if !rel.is_finite() {
        return u64::MAX;
    }
    (rel * 1e6).round().min(9.0e18) as u64
}

// ---------------------------------------------------------------------------
// Job-level plumbing: conf parsing, probes, reports
// ---------------------------------------------------------------------------

/// The parsed error-bound configuration of an estimating aggregate job.
#[derive(Debug, Clone, PartialEq)]
pub struct AggPlan {
    /// Relative error bound `e` ∈ (0, 1) (`mapred.agg.error`).
    pub error: f64,
    /// Confidence level `c` ∈ (0, 1) (`mapred.agg.confidence`).
    pub confidence: f64,
    /// Growth-round budget (`mapred.agg.rounds`).
    pub rounds: u64,
    /// Aggregate functions, in projection order (`mapred.agg.funcs`).
    pub funcs: Vec<AggKind>,
    /// Candidate input size `M` (`mapred.agg.total.splits`).
    pub total_splits: u32,
}

fn bad(key: &str, value: &str, wanted: &'static str) -> ConfError {
    ConfError {
        key: key.to_string(),
        value: value.to_string(),
        wanted,
    }
}

/// Parse and validate the error-bound keys of a conf. Returns `Ok(None)`
/// when the job carries no `mapred.agg.error` (not an estimating job);
/// typed [`ConfError`]s reject out-of-range `e`/`c`, a zero round budget,
/// an unknown function name, and a missing/zero split total.
pub fn agg_plan_of(conf: &JobConf) -> Result<Option<AggPlan>, ConfError> {
    let Some(raw_error) = conf.get(keys::AGG_ERROR) else {
        if let Some(raw_c) = conf.get(keys::AGG_CONFIDENCE) {
            return Err(bad(
                keys::AGG_CONFIDENCE,
                raw_c,
                "confidence without mapred.agg.error",
            ));
        }
        return Ok(None);
    };
    let error: f64 = raw_error
        .parse()
        .ok()
        .filter(|e: &f64| e.is_finite() && *e > 0.0 && *e < 1.0)
        .ok_or_else(|| bad(keys::AGG_ERROR, raw_error, "relative error in (0, 1)"))?;
    let raw_conf = conf.get(keys::AGG_CONFIDENCE).unwrap_or("0.95");
    let confidence: f64 = raw_conf
        .parse()
        .ok()
        .filter(|c: &f64| c.is_finite() && *c > 0.0 && *c < 1.0)
        .ok_or_else(|| bad(keys::AGG_CONFIDENCE, raw_conf, "confidence in (0, 1)"))?;
    let rounds = conf.get_u64_or(keys::AGG_ROUNDS, DEFAULT_AGG_ROUNDS)?;
    if rounds == 0 {
        return Err(bad(
            keys::AGG_ROUNDS,
            conf.get(keys::AGG_ROUNDS).unwrap_or("0"),
            "growth-round budget >= 1",
        ));
    }
    let raw_funcs = conf.get(keys::AGG_FUNCS).unwrap_or("");
    let funcs = decode_funcs(raw_funcs)
        .ok_or_else(|| bad(keys::AGG_FUNCS, raw_funcs, "comma list of count|sum|avg"))?;
    let total_splits = conf.get_u64_or(keys::AGG_TOTAL_SPLITS, 0)?;
    if total_splits == 0 || total_splits > u64::from(u32::MAX) {
        return Err(bad(
            keys::AGG_TOTAL_SPLITS,
            conf.get(keys::AGG_TOTAL_SPLITS).unwrap_or("0"),
            "total split count >= 1",
        ));
    }
    Ok(Some(AggPlan {
        error,
        confidence,
        rounds,
        funcs,
        total_splits: total_splits as u32,
    }))
}

/// One estimator probe, as handed to the growth driver through
/// [`EvalContext::with_agg`](crate::job::EvalContext::with_agg): the
/// runtime evaluates the stopping rule over its folded accumulators just
/// before each driver consultation, so the estimating Input Provider sees
/// a fresh verdict every round.
#[derive(Debug, Clone, PartialEq)]
pub struct AggProbe {
    /// The job probed.
    pub job: JobId,
    /// Splits folded into the estimate (`m`).
    pub completed: u32,
    /// The candidate input size (`M`).
    pub total: u32,
    /// Distinct groups observed.
    pub groups: u32,
    /// True when the configured bound holds for every group/aggregate.
    pub bound_met: bool,
    /// Worst relative half-width across groups/aggregates.
    pub worst_rel: f64,
    /// Additional splits the probe projects are needed (0 once met).
    pub suggested_splits: u64,
    /// When the probe ran (simulated time).
    pub at: SimTime,
}

/// How a *completed* error-bounded aggregate job stopped, mirroring
/// `SampleOutcome` for the sampling path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOutcome {
    /// The error bound was met before the input ran out: early result.
    BoundMet,
    /// The growth-round budget (or the input pool) ran out first; the
    /// estimate stands but its achieved bound is wider than requested.
    BudgetExhausted,
    /// Every split was processed — the answer is exact, not an estimate.
    Exact,
}

impl std::fmt::Display for AggOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggOutcome::BoundMet => write!(f, "bound-met"),
            AggOutcome::BudgetExhausted => write!(f, "budget-exhausted"),
            AggOutcome::Exact => write!(f, "exact"),
        }
    }
}

/// The final estimator verdict attached to a completed aggregate job's
/// [`JobResult`](crate::job::JobResult).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggReport {
    /// How the job stopped.
    pub outcome: AggOutcome,
    /// Splits actually processed (`m`).
    pub completed: u32,
    /// Candidate input size (`M`).
    pub total: u32,
    /// Distinct groups in the final fold.
    pub groups: u32,
    /// Achieved worst relative half-width at completion (0 when exact).
    pub worst_rel: f64,
}

impl AggReport {
    /// The expansion factor `M/m` that scales raw sampled `SUM`/`COUNT`
    /// totals up to full-population estimates (1 for an exact run).
    pub fn scale(&self) -> f64 {
        if self.completed == 0 {
            1.0
        } else {
            self.total as f64 / self.completed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn part(group: &str, n: u64, sums: &[f64]) -> SplitAggPart {
        SplitAggPart {
            group: Key::from(group),
            n,
            sums: sums.to_vec(),
        }
    }

    #[test]
    fn group_part_record_round_trips() {
        let rec = encode_group_part(7, &[1.5, -2.0]);
        let back = decode_group_part(&Key::from("g"), &rec, 2).unwrap();
        assert_eq!(back.n, 7);
        assert_eq!(back.sums, vec![1.5, -2.0]);
        assert!(decode_group_part(&Key::from("g"), &rec, 3).is_none());
    }

    #[test]
    fn funcs_encode_decode() {
        let funcs = vec![AggKind::Count, AggKind::Sum, AggKind::Avg];
        assert_eq!(encode_funcs(&funcs), "count,sum,avg");
        assert_eq!(decode_funcs("count,sum,avg").unwrap(), funcs);
        assert!(decode_funcs("count,median").is_none());
        assert!(decode_funcs("").is_none());
    }

    #[test]
    fn fold_is_order_invariant_across_task_ids() {
        let mut a = BTreeMap::new();
        a.insert(0, vec![part("x", 2, &[4.0])]);
        a.insert(1, vec![part("x", 3, &[9.0]), part("y", 1, &[1.0])]);
        let mut b = BTreeMap::new();
        b.insert(1, vec![part("x", 3, &[9.0]), part("y", 1, &[1.0])]);
        b.insert(0, vec![part("x", 2, &[4.0])]);
        assert_eq!(fold_parts(&a, 1), fold_parts(&b, 1));
        let acc = &fold_parts(&a, 1)[&Key::from("x")];
        assert_eq!(acc.c1, 5.0);
        assert_eq!(acc.c2, 13.0);
        assert_eq!(acc.s1, vec![13.0]);
        assert_eq!(acc.s2, vec![97.0]);
        assert_eq!(acc.xy, vec![35.0]);
        assert_eq!(acc.present, 2);
    }

    #[test]
    fn z_quantile_matches_known_values() {
        assert!((z_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((z_quantile(0.95) - 1.644854).abs() < 1e-4);
        assert!((z_quantile(0.5)).abs() < 1e-9);
        assert!((z_quantile(0.025) + 1.959964).abs() < 1e-4);
        assert!((z_quantile(0.005) + 2.575829).abs() < 1e-4);
    }

    #[test]
    fn identical_splits_meet_any_bound() {
        // Every split contributes the same total → zero variance → SE 0.
        let mut parts = BTreeMap::new();
        for t in 0..6 {
            parts.insert(t, vec![part("g", 10, &[100.0])]);
        }
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 6, 100, &[AggKind::Sum], 0.01, 0.99);
        assert!(eval.bound_met);
        assert_eq!(eval.worst_rel, 0.0);
        assert_eq!(eval.suggested_splits, 0);
        assert_eq!(eval.groups, 1);
    }

    #[test]
    fn too_few_splits_never_meet_the_bound() {
        let mut parts = BTreeMap::new();
        parts.insert(0, vec![part("g", 10, &[100.0])]);
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 1, 100, &[AggKind::Sum], 0.5, 0.5);
        assert!(!eval.bound_met, "one split is never enough");
        assert!(eval.suggested_splits >= 1);
    }

    #[test]
    fn full_scan_meets_any_bound_via_fpc() {
        // High variance, but m == M → FPC zeroes the SE.
        let mut parts = BTreeMap::new();
        for t in 0..8u32 {
            parts.insert(t, vec![part("g", 1, &[f64::from(t) * 1000.0])]);
        }
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 8, 8, &[AggKind::Sum], 0.001, 0.999);
        assert!(eval.bound_met);
        assert_eq!(eval.worst_rel, 0.0);
    }

    #[test]
    fn variance_widens_the_bound_and_suggests_growth() {
        let mut parts = BTreeMap::new();
        for t in 0..5u32 {
            // Wildly varying split totals.
            parts.insert(
                t,
                vec![part("g", 10, &[if t % 2 == 0 { 10.0 } else { 1000.0 }])],
            );
        }
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 5, 1000, &[AggKind::Sum], 0.05, 0.95);
        assert!(!eval.bound_met);
        assert!(eval.worst_rel > 0.05);
        assert!(eval.suggested_splits >= 1);
    }

    #[test]
    fn avg_ratio_estimator_is_tight_when_ratio_is_stable() {
        // Split sizes differ but per-row mean is constant → residuals 0.
        let mut parts = BTreeMap::new();
        for (t, n) in [(0u32, 5u64), (1, 50), (2, 17), (3, 8)] {
            parts.insert(t, vec![part("g", n, &[n as f64 * 3.5])]);
        }
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 4, 1000, &[AggKind::Avg], 0.01, 0.99);
        assert!(eval.bound_met, "constant ratio has zero residual variance");
        let acc = &accums[&Key::from("g")];
        assert!((acc.s1[0] / acc.c1 - 3.5).abs() < 1e-12);
    }

    #[test]
    fn zero_estimate_with_spread_is_unresolved() {
        let mut parts = BTreeMap::new();
        parts.insert(0, vec![part("g", 1, &[5.0])]);
        parts.insert(1, vec![part("g", 1, &[-5.0])]);
        parts.insert(2, vec![part("g", 1, &[5.0])]);
        parts.insert(3, vec![part("g", 1, &[-5.0])]);
        let accums = fold_parts(&parts, 1);
        let eval = evaluate_bound(&accums, 4, 100, &[AggKind::Sum], 0.1, 0.95);
        assert!(!eval.bound_met);
        assert_eq!(eval.worst_rel, f64::INFINITY);
        assert_eq!(rel_to_ppm(eval.worst_rel), u64::MAX);
    }

    #[test]
    fn plan_parses_and_rejects_out_of_range() {
        let conf = JobConf::new()
            .with(keys::AGG_ERROR, 0.05)
            .with(keys::AGG_CONFIDENCE, 0.95)
            .with(keys::AGG_FUNCS, "sum,avg")
            .with(keys::AGG_TOTAL_SPLITS, 40);
        let plan = agg_plan_of(&conf).unwrap().unwrap();
        assert_eq!(plan.error, 0.05);
        assert_eq!(plan.confidence, 0.95);
        assert_eq!(plan.rounds, DEFAULT_AGG_ROUNDS);
        assert_eq!(plan.funcs, vec![AggKind::Sum, AggKind::Avg]);
        assert_eq!(plan.total_splits, 40);
        // Not an estimating job at all.
        assert_eq!(agg_plan_of(&JobConf::new()).unwrap(), None);
        // Out-of-range / malformed values are typed errors.
        for (key, value) in [
            (keys::AGG_ERROR, "0"),
            (keys::AGG_ERROR, "1"),
            (keys::AGG_ERROR, "-0.5"),
            (keys::AGG_ERROR, "NaN"),
            (keys::AGG_ERROR, "abc"),
            (keys::AGG_CONFIDENCE, "0"),
            (keys::AGG_CONFIDENCE, "1.2"),
            (keys::AGG_ROUNDS, "0"),
            (keys::AGG_FUNCS, "median"),
            (keys::AGG_TOTAL_SPLITS, "0"),
        ] {
            let mut conf = JobConf::new()
                .with(keys::AGG_ERROR, 0.05)
                .with(keys::AGG_CONFIDENCE, 0.95)
                .with(keys::AGG_FUNCS, "sum")
                .with(keys::AGG_TOTAL_SPLITS, 40);
            conf.set(key, value);
            let err = agg_plan_of(&conf).unwrap_err();
            assert_eq!(err.key, key, "{key}={value}");
        }
        // Confidence without an error bound is rejected, not ignored.
        let orphan = JobConf::new().with(keys::AGG_CONFIDENCE, 0.9);
        assert!(agg_plan_of(&orphan).is_err());
    }

    #[test]
    fn report_scale_is_m_over_m() {
        let report = AggReport {
            outcome: AggOutcome::BoundMet,
            completed: 10,
            total: 40,
            groups: 3,
            worst_rel: 0.02,
        };
        assert_eq!(report.scale(), 4.0);
        assert_eq!(report.outcome.to_string(), "bound-met");
        assert_eq!(AggOutcome::Exact.to_string(), "exact");
        assert_eq!(AggOutcome::BudgetExhausted.to_string(), "budget-exhausted");
    }
}
