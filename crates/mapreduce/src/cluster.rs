//! Cluster configuration and status snapshots.
//!
//! [`ClusterStatus`] is the framework-side knowledge an Input Provider
//! receives at each evaluation (paper Section III): total capacity in map
//! slots (`TS` in Table I), current availability (`AS`), and load. The
//! paper notes that "collection and reporting of these statistics is an
//! existing feature in Hadoop" — here it falls out of the runtime state.

use incmr_dfs::ClusterTopology;

/// How many host worker threads the *data plane* may use for map-task
/// record work. This is a host-execution knob, not a modelling one:
/// simulated time is byte-identical at every setting (see
/// `crate::parallel`); only wall-clock time changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Worker threads; `1` means serial in-loop execution (no pool).
    pub threads: u32,
}

impl Parallelism {
    /// Serial execution — the default, and the reference behaviour the
    /// parallel path must reproduce exactly.
    pub const SERIAL: Parallelism = Parallelism { threads: 1 };

    /// A pool of `threads` workers (clamped to at least 1).
    pub fn threads(threads: u32) -> Self {
        Parallelism {
            threads: threads.max(1),
        }
    }

    /// Use every core the host reports.
    pub fn available() -> Self {
        Parallelism::threads(
            std::thread::available_parallelism()
                .map(|n| n.get() as u32)
                .unwrap_or(1),
        )
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Parallelism::SERIAL
    }
}

/// Static configuration of the simulated cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Hardware shape (nodes, disks, cores).
    pub topology: ClusterTopology,
    /// Concurrent map tasks allowed per node. The paper uses 4 for
    /// single-user experiments and 16 for multi-user throughput runs.
    pub map_slots_per_node: u32,
    /// Concurrent reduce tasks allowed per node ("the number of reduce
    /// slots required by a job is typically small", Section II-C; Hadoop's
    /// default is 2 per TaskTracker).
    pub reduce_slots_per_node: u32,
    /// Host-side data-plane parallelism (does not affect simulated time).
    pub parallelism: Parallelism,
}

impl ClusterConfig {
    /// The paper's single-user configuration: 10 nodes × 4 map slots.
    pub fn paper_single_user() -> Self {
        ClusterConfig {
            topology: ClusterTopology::paper_cluster(),
            map_slots_per_node: 4,
            reduce_slots_per_node: 2,
            parallelism: Parallelism::SERIAL,
        }
    }

    /// The paper's multi-user configuration: 10 nodes × 16 map slots
    /// ("the number 16 was arrived at by trying different settings with the
    /// objective of achieving maximum throughput", Section V-D).
    pub fn paper_multi_user() -> Self {
        ClusterConfig {
            topology: ClusterTopology::paper_cluster(),
            map_slots_per_node: 16,
            reduce_slots_per_node: 2,
            parallelism: Parallelism::SERIAL,
        }
    }

    /// The same configuration with a different data-plane parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Total map slots across the cluster (`TS`).
    pub fn total_map_slots(&self) -> u32 {
        self.topology.num_nodes() as u32 * self.map_slots_per_node
    }

    /// Total reduce slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.topology.num_nodes() as u32 * self.reduce_slots_per_node
    }
}

/// A point-in-time snapshot of cluster load, as reported to Input Providers
/// and schedulers.
///
/// Under a cluster fault plan (`crate::MrRuntime::inject_cluster_faults`),
/// dead nodes drop out of the snapshot entirely: `total_map_slots` counts
/// only alive nodes, so Input Providers observe lost capacity as a smaller
/// `TS` rather than as phantom occupied slots, and `AS` stays honest while
/// nodes are down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterStatus {
    /// Total map slots (`TS`).
    pub total_map_slots: u32,
    /// Map slots currently running a task.
    pub occupied_map_slots: u32,
    /// Jobs not yet completed.
    pub running_jobs: u32,
    /// Map tasks waiting for a slot, across all jobs.
    pub queued_map_tasks: u32,
}

impl ClusterStatus {
    /// Available map slots (`AS` in Table I). Saturating: a node death
    /// between a snapshot's construction and its consumption can leave
    /// `occupied > total` transiently, and a garbage wrap-around here
    /// would hand Input Providers an absurd grab limit.
    pub fn available_map_slots(&self) -> u32 {
        self.total_map_slots.saturating_sub(self.occupied_map_slots)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        assert_eq!(ClusterConfig::paper_single_user().total_map_slots(), 40);
        assert_eq!(ClusterConfig::paper_multi_user().total_map_slots(), 160);
    }

    #[test]
    fn available_slots_is_ts_minus_occupied() {
        let s = ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 25,
            running_jobs: 3,
            queued_map_tasks: 100,
        };
        assert_eq!(s.available_map_slots(), 15);
    }

    #[test]
    fn available_slots_saturates_when_occupied_exceeds_total() {
        // A node death can shrink `total` before `occupied` catches up;
        // the snapshot must degrade to 0 free slots, never wrap.
        let s = ClusterStatus {
            total_map_slots: 36,
            occupied_map_slots: 40,
            running_jobs: 1,
            queued_map_tasks: 0,
        };
        assert_eq!(s.available_map_slots(), 0);
    }
}
