//! Execution tracing: a timeline of scheduling decisions and task
//! lifecycles, for debugging policies and visualising runs.
//!
//! Tracing is off by default (hot paths stay allocation-free); enable it
//! with [`crate::MrRuntime::enable_tracing`] and collect the events with
//! [`crate::MrRuntime::take_trace`]. [`render_timeline`] draws an ASCII
//! chart of cluster occupancy, and [`JobTimeline`] summarises one job's
//! phases.

use std::fmt;

use incmr_dfs::{BlockId, DiskId, NodeId};
use incmr_simkit::{SimDuration, SimTime};

use crate::job::{JobId, TaskId};

/// One traced occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

/// The kinds of traced occurrences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A job was submitted.
    JobSubmitted {
        /// The job.
        job: JobId,
    },
    /// A growth driver added input splits.
    InputAdded {
        /// The job.
        job: JobId,
        /// Number of splits added in this step.
        splits: u32,
    },
    /// The driver declared end-of-input.
    EndOfInput {
        /// The job.
        job: JobId,
    },
    /// A map attempt was dispatched to a slot.
    MapStarted {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// The node whose slot it took.
        node: NodeId,
        /// Whether the read is data-local.
        local: bool,
    },
    /// A map attempt completed successfully.
    MapFinished {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
    },
    /// A map attempt failed (fault injection).
    MapFailed {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// Which attempt failed (1-based).
        attempt: u32,
    },
    /// The shuffle closed: every map completed and the per-reduce buffers
    /// are final. Carries only deterministic counters (records/bytes), so
    /// traces stay thread-count-invariant.
    ShuffleReady {
        /// The job.
        job: JobId,
        /// Reduce partitions created.
        partitions: u32,
        /// Records fed to the map-side combiner (0 when the job has none).
        combiner_in: u64,
        /// Records surviving the combiner.
        combiner_out: u64,
        /// Largest modeled partition share in bytes (skew numerator).
        max_partition_bytes: u64,
        /// Smallest modeled partition share in bytes (skew denominator).
        min_partition_bytes: u64,
    },
    /// A reduce task started on a reduce slot.
    ReduceStarted {
        /// The job.
        job: JobId,
        /// Reduce partition index.
        reduce: u32,
        /// Host node.
        node: NodeId,
    },
    /// A reduce task committed.
    ReduceFinished {
        /// The job.
        job: JobId,
        /// Reduce partition index.
        reduce: u32,
    },
    /// The job finished (successfully or not).
    JobCompleted {
        /// The job.
        job: JobId,
        /// True if the job was aborted.
        failed: bool,
    },
    /// A reduce attempt failed (fault injection).
    ReduceFailed {
        /// The job.
        job: JobId,
        /// Reduce partition index.
        reduce: u32,
        /// Which attempt failed (1-based).
        attempt: u32,
    },
    /// A node (TaskTracker) died; its slots, running attempts, and stored
    /// map output are gone.
    NodeLost {
        /// The dead node.
        node: NodeId,
    },
    /// A dead node rejoined the cluster with fresh slots.
    NodeRejoined {
        /// The recovered node.
        node: NodeId,
    },
    /// A speculative attempt of a laggard map task was launched.
    SpeculativeLaunch {
        /// The job.
        job: JobId,
        /// The task being speculated.
        task: TaskId,
        /// The node hosting the backup attempt.
        node: NodeId,
    },
    /// A running attempt was killed (node death or losing a speculative
    /// race) — killed, not failed: it does not count against the task's
    /// attempt budget.
    AttemptKilled {
        /// The job.
        job: JobId,
        /// The task.
        task: TaskId,
        /// The node the attempt was running on.
        node: NodeId,
    },
    /// A job blacklisted a node after repeated counted failures on it.
    NodeBlacklisted {
        /// The job.
        job: JobId,
        /// The banned node.
        node: NodeId,
    },
    /// The job's Input Provider (or growth driver) misbehaved — a caught
    /// panic or an invalid directive. Non-fatal occurrences consumed one
    /// unit of the job's retry budget; fatal ones failed the job.
    ProviderFault {
        /// The job.
        job: JobId,
        /// True if the fault failed the job (retry budget exhausted).
        fatal: bool,
    },
    /// An `AddInput` directive exceeded the driver's grab limit and was
    /// truncated to it.
    GrabLimitClamped {
        /// The job.
        job: JobId,
        /// Splits the directive asked for.
        requested: u32,
        /// Splits actually granted (the grab limit).
        granted: u32,
    },
    /// `AddInput` entries naming splits the job already claimed were
    /// dropped (dedup within and across directives).
    DuplicateInputDropped {
        /// The job.
        job: JobId,
        /// Number of duplicate entries dropped.
        splits: u32,
    },
    /// The livelock watchdog terminated the job: too many consecutive
    /// unproductive evaluations with nothing running or pending.
    JobWedged {
        /// The job.
        job: JobId,
        /// Consecutive idle evaluations observed at termination.
        idle_evaluations: u32,
    },
    /// The job's simulated-time deadline expired.
    DeadlineExceeded {
        /// The job.
        job: JobId,
        /// True if the job degrades to a partial result
        /// (`mapred.job.allow.partial`) instead of failing.
        graceful: bool,
    },
    /// A sampling job completed with fewer than its requested `k` matches
    /// (paper semantics: the answer set is still correct, just smaller).
    PartialSample {
        /// The job.
        job: JobId,
        /// Matches actually produced.
        found: u64,
        /// The configured sample size `k`.
        requested: u64,
    },
    /// A query service admitted a tenant's query to the cluster (recorded
    /// by the front end via [`crate::MrRuntime::record_event`]).
    QueryAdmitted {
        /// The tenant that submitted the query.
        tenant: u32,
        /// The job it became.
        job: JobId,
    },
    /// Admission control rejected a tenant's query: its per-tenant queue
    /// was already at its depth cap.
    QueryRejected {
        /// The tenant whose query bounced.
        tenant: u32,
        /// Queue depth observed at rejection (the cap).
        queued: u32,
    },
    /// A tenant's query was accepted but parked in its queue — the tenant
    /// is at its in-flight quota (or the service at its global cap) and
    /// must wait for the weighted-fair release.
    QuotaDeferred {
        /// The tenant whose query waits.
        tenant: u32,
        /// Queue depth after parking this query.
        depth: u32,
    },
    /// The memo store satisfied a map task from cached output: the attempt
    /// kept its simulated schedule but skipped host recomputation.
    SplitReused {
        /// The job.
        job: JobId,
        /// The reused task.
        task: TaskId,
    },
    /// A memo entry for this split existed but at a stale block version —
    /// the split was rewritten since it was cached and must recompute.
    SplitDirty {
        /// The job.
        job: JobId,
        /// The dirty task.
        task: TaskId,
    },
    /// New blocks landed on the DFS while the cluster was live; parked
    /// standing queries were woken to consider them. Cluster-level: the
    /// arrival precedes any job claiming the splits.
    InputArrived {
        /// Number of blocks that arrived in this evolve step.
        splits: u32,
    },
    /// A node death destroyed a stored replica of a block (data-loss mode).
    /// Cluster-level: replica loss precedes any job-level consequence.
    ReplicaLost {
        /// The block that lost a copy.
        block: BlockId,
        /// The dead node that hosted it.
        node: NodeId,
    },
    /// The re-replication daemon restored a copy of an under-replicated
    /// block onto a live node. Cluster-level.
    ReplicaRestored {
        /// The block that regained a copy.
        block: BlockId,
        /// The node now hosting the new replica.
        node: NodeId,
    },
    /// A dispatched map attempt's intended replica died before the read
    /// began; the read failed over to a surviving replica.
    ReadFailover {
        /// The job.
        job: JobId,
        /// The task whose read moved.
        task: TaskId,
        /// The (now dead) disk the attempt was dispatched against.
        from: DiskId,
        /// The live replica the read failed over to.
        to: DiskId,
    },
    /// Every replica of one or more of the job's input blocks is gone. The
    /// job either fails with `JobError::InputLost` or, with
    /// `mapred.job.allow.partial`, abandons those splits and degrades to a
    /// partial sample.
    InputLost {
        /// The job.
        job: JobId,
        /// Number of distinct lost blocks.
        blocks: u32,
        /// True if the job degrades to a partial result instead of failing.
        graceful: bool,
    },
    /// Estimating aggregate job: the runtime folded per-group accumulators
    /// from completed map output and probed the CLT stopping rule ahead of
    /// a driver evaluation.
    ErrorBoundProbe {
        /// The job.
        job: JobId,
        /// Completed splits folded into this probe.
        completed: u32,
        /// Distinct groups observed so far.
        groups: u32,
        /// Worst per-group/per-aggregate relative half-width, in parts
        /// per million (`u64::MAX` when a group is still unresolved).
        worst_ppm: u64,
        /// True if every group and aggregate met the error bound.
        bound_met: bool,
    },
    /// Estimating aggregate job: the error bound held at the requested
    /// confidence, so the provider stopped growing the job early.
    BoundMet {
        /// The job.
        job: JobId,
        /// Splits processed when the bound was met.
        completed: u32,
        /// Candidate splits a full scan would have processed.
        total: u32,
    },
}

impl TraceKind {
    /// The job this event belongs to (`None` for cluster-level events
    /// such as node loss).
    pub fn job(&self) -> Option<JobId> {
        match self {
            TraceKind::JobSubmitted { job }
            | TraceKind::InputAdded { job, .. }
            | TraceKind::EndOfInput { job }
            | TraceKind::MapStarted { job, .. }
            | TraceKind::MapFinished { job, .. }
            | TraceKind::MapFailed { job, .. }
            | TraceKind::ShuffleReady { job, .. }
            | TraceKind::ReduceStarted { job, .. }
            | TraceKind::ReduceFinished { job, .. }
            | TraceKind::JobCompleted { job, .. }
            | TraceKind::ReduceFailed { job, .. }
            | TraceKind::SpeculativeLaunch { job, .. }
            | TraceKind::AttemptKilled { job, .. }
            | TraceKind::NodeBlacklisted { job, .. }
            | TraceKind::ProviderFault { job, .. }
            | TraceKind::GrabLimitClamped { job, .. }
            | TraceKind::DuplicateInputDropped { job, .. }
            | TraceKind::JobWedged { job, .. }
            | TraceKind::DeadlineExceeded { job, .. }
            | TraceKind::PartialSample { job, .. }
            | TraceKind::QueryAdmitted { job, .. }
            | TraceKind::SplitReused { job, .. }
            | TraceKind::SplitDirty { job, .. }
            | TraceKind::ReadFailover { job, .. }
            | TraceKind::InputLost { job, .. }
            | TraceKind::ErrorBoundProbe { job, .. }
            | TraceKind::BoundMet { job, .. } => Some(*job),
            TraceKind::NodeLost { .. }
            | TraceKind::NodeRejoined { .. }
            | TraceKind::QueryRejected { .. }
            | TraceKind::QuotaDeferred { .. }
            | TraceKind::InputArrived { .. }
            | TraceKind::ReplicaLost { .. }
            | TraceKind::ReplicaRestored { .. } => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ", self.time)?;
        match &self.kind {
            TraceKind::JobSubmitted { job } => write!(f, "{job} submitted"),
            TraceKind::InputAdded { job, splits } => write!(f, "{job} +{splits} splits"),
            TraceKind::EndOfInput { job } => write!(f, "{job} end-of-input"),
            TraceKind::MapStarted {
                job,
                task,
                node,
                local,
            } => {
                write!(
                    f,
                    "{job}/{task} -> {node}{}",
                    if *local { "" } else { " (remote)" }
                )
            }
            TraceKind::MapFinished { job, task } => write!(f, "{job}/{task} done"),
            TraceKind::MapFailed { job, task, attempt } => {
                write!(f, "{job}/{task} FAILED (attempt {attempt})")
            }
            TraceKind::ShuffleReady {
                job,
                partitions,
                combiner_in,
                combiner_out,
                max_partition_bytes,
                min_partition_bytes,
            } => {
                write!(
                    f,
                    "{job} shuffle ready: {partitions} partitions \
                     ({min_partition_bytes}..{max_partition_bytes} B), \
                     combiner {combiner_in}->{combiner_out}"
                )
            }
            TraceKind::ReduceStarted { job, reduce, node } => {
                write!(f, "{job}/r{reduce} -> {node}")
            }
            TraceKind::ReduceFinished { job, reduce } => write!(f, "{job}/r{reduce} done"),
            TraceKind::JobCompleted { job, failed } => {
                write!(f, "{job} {}", if *failed { "FAILED" } else { "completed" })
            }
            TraceKind::ReduceFailed {
                job,
                reduce,
                attempt,
            } => {
                write!(f, "{job}/r{reduce} FAILED (attempt {attempt})")
            }
            TraceKind::NodeLost { node } => write!(f, "{node} LOST"),
            TraceKind::NodeRejoined { node } => write!(f, "{node} rejoined"),
            TraceKind::SpeculativeLaunch { job, task, node } => {
                write!(f, "{job}/{task} speculative -> {node}")
            }
            TraceKind::AttemptKilled { job, task, node } => {
                write!(f, "{job}/{task} killed on {node}")
            }
            TraceKind::NodeBlacklisted { job, node } => {
                write!(f, "{job} blacklists {node}")
            }
            TraceKind::ProviderFault { job, fatal } => {
                write!(
                    f,
                    "{job} provider fault{}",
                    if *fatal { " (FATAL)" } else { " (retrying)" }
                )
            }
            TraceKind::GrabLimitClamped {
                job,
                requested,
                granted,
            } => {
                write!(f, "{job} grab clamped {requested}->{granted}")
            }
            TraceKind::DuplicateInputDropped { job, splits } => {
                write!(f, "{job} dropped {splits} duplicate splits")
            }
            TraceKind::JobWedged {
                job,
                idle_evaluations,
            } => {
                write!(f, "{job} WEDGED after {idle_evaluations} idle evaluations")
            }
            TraceKind::DeadlineExceeded { job, graceful } => {
                write!(
                    f,
                    "{job} deadline exceeded{}",
                    if *graceful { " (partial)" } else { " (FATAL)" }
                )
            }
            TraceKind::PartialSample {
                job,
                found,
                requested,
            } => {
                write!(f, "{job} partial sample {found}/{requested}")
            }
            TraceKind::QueryAdmitted { tenant, job } => {
                write!(f, "tenant{tenant} admitted -> {job}")
            }
            TraceKind::QueryRejected { tenant, queued } => {
                write!(f, "tenant{tenant} REJECTED (queue at {queued})")
            }
            TraceKind::QuotaDeferred { tenant, depth } => {
                write!(f, "tenant{tenant} deferred (queue depth {depth})")
            }
            TraceKind::SplitReused { job, task } => {
                write!(f, "{job}/{task} reused from memo")
            }
            TraceKind::SplitDirty { job, task } => {
                write!(f, "{job}/{task} dirty (stale memo version)")
            }
            TraceKind::InputArrived { splits } => {
                write!(f, "+{splits} blocks arrived")
            }
            TraceKind::ReplicaLost { block, node } => {
                write!(f, "{block} replica on {node} LOST")
            }
            TraceKind::ReplicaRestored { block, node } => {
                write!(f, "{block} re-replicated -> {node}")
            }
            TraceKind::ReadFailover {
                job,
                task,
                from,
                to,
            } => {
                write!(f, "{job}/{task} read failover {from} -> {to}")
            }
            TraceKind::InputLost {
                job,
                blocks,
                graceful,
            } => {
                write!(
                    f,
                    "{job} input lost: {blocks} block(s){}",
                    if *graceful { " (partial)" } else { " (FATAL)" }
                )
            }
            TraceKind::ErrorBoundProbe {
                job,
                completed,
                groups,
                worst_ppm,
                bound_met,
            } => {
                write!(
                    f,
                    "{job} error-bound probe: {completed} splits, {groups} groups, worst {worst_ppm} ppm{}",
                    if *bound_met { " (met)" } else { "" }
                )
            }
            TraceKind::BoundMet {
                job,
                completed,
                total,
            } => {
                write!(f, "{job} bound met at {completed}/{total} splits")
            }
        }
    }
}

/// Phase summary of one job, derived from a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTimeline {
    /// The job.
    pub job: JobId,
    /// Submission instant.
    pub submitted: SimTime,
    /// When the driver declared end-of-input (if it did).
    pub end_of_input: Option<SimTime>,
    /// Completion instant (if the job finished inside the trace).
    pub completed: Option<SimTime>,
    /// Input-addition steps `(time, splits)` — the job's growth curve.
    pub growth: Vec<(SimTime, u32)>,
    /// Map attempts started / finished / failed.
    pub maps: (u32, u32, u32),
    /// Reduce tasks started / finished.
    pub reduces: (u32, u32),
}

/// Summarise one job's phases from a trace.
pub fn job_timeline(events: &[TraceEvent], job: JobId) -> Option<JobTimeline> {
    let mut timeline: Option<JobTimeline> = None;
    for e in events.iter().filter(|e| e.kind.job() == Some(job)) {
        match &e.kind {
            TraceKind::JobSubmitted { .. } => {
                timeline = Some(JobTimeline {
                    job,
                    submitted: e.time,
                    end_of_input: None,
                    completed: None,
                    growth: Vec::new(),
                    maps: (0, 0, 0),
                    reduces: (0, 0),
                });
            }
            kind => {
                let t = timeline.as_mut()?;
                match kind {
                    TraceKind::InputAdded { splits, .. } => t.growth.push((e.time, *splits)),
                    TraceKind::EndOfInput { .. } => t.end_of_input = Some(e.time),
                    TraceKind::MapStarted { .. } => t.maps.0 += 1,
                    TraceKind::MapFinished { .. } => t.maps.1 += 1,
                    TraceKind::MapFailed { .. } => t.maps.2 += 1,
                    TraceKind::ReduceStarted { .. } => t.reduces.0 += 1,
                    TraceKind::ReduceFinished { .. } => t.reduces.1 += 1,
                    TraceKind::JobCompleted { .. } => t.completed = Some(e.time),
                    TraceKind::JobSubmitted { .. } => unreachable!(),
                    // Fault-plane and shuffle bookkeeping events don't
                    // shift the phase summary.
                    _ => {}
                }
            }
        }
    }
    timeline
}

/// Render an ASCII occupancy timeline: one row per job, one column per
/// time bucket, cell = concurrently running map attempts (`.` none,
/// `1`–`9`, `#` ten or more). A compact Gantt substitute for terminals.
pub fn render_timeline(events: &[TraceEvent], buckets: usize) -> String {
    if events.is_empty() {
        return String::from("(empty trace)\n");
    }
    let start = events.first().expect("nonempty").time;
    let end = events.last().expect("nonempty").time;
    let span_ms = (end - start).as_millis().max(1);
    let bucket_ms = span_ms.div_ceil(buckets as u64).max(1);

    // Collect per-job running intervals from start/finish pairs.
    let mut jobs: Vec<JobId> = Vec::new();
    for e in events {
        let Some(j) = e.kind.job() else { continue };
        if !jobs.contains(&j) {
            jobs.push(j);
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "timeline: {} → {} ({} buckets of {})\n",
        start,
        end,
        buckets,
        SimDuration::from_millis(bucket_ms)
    ));
    for job in jobs {
        // Running-map deltas per bucket.
        let mut delta = vec![0i64; buckets + 1];
        let mut open: std::collections::HashMap<TaskId, usize> = std::collections::HashMap::new();
        for e in events.iter().filter(|e| e.kind.job() == Some(job)) {
            let b = (((e.time - start).as_millis()) / bucket_ms) as usize;
            let b = b.min(buckets - 1);
            match &e.kind {
                TraceKind::MapStarted { task, .. } => {
                    open.insert(*task, b);
                }
                TraceKind::MapFinished { task, .. }
                | TraceKind::MapFailed { task, .. }
                | TraceKind::AttemptKilled { task, .. } => {
                    if let Some(sb) = open.remove(task) {
                        delta[sb] += 1;
                        delta[b + 1] -= 1;
                    }
                }
                _ => {}
            }
        }
        // Tasks still open at trace end run through the last bucket.
        for (_, sb) in open {
            delta[sb] += 1;
        }
        let mut running = 0i64;
        let cells: String = (0..buckets)
            .map(|b| {
                running += delta[b];
                match running {
                    0 => '.',
                    1..=9 => char::from_digit(running as u32, 10).expect("1..=9"),
                    _ => '#',
                }
            })
            .collect();
        out.push_str(&format!("{job} |{cells}|\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_millis(ms),
            kind,
        }
    }

    fn sample_trace() -> Vec<TraceEvent> {
        let job = JobId(0);
        vec![
            ev(0, TraceKind::JobSubmitted { job }),
            ev(0, TraceKind::InputAdded { job, splits: 2 }),
            ev(
                100,
                TraceKind::MapStarted {
                    job,
                    task: TaskId(0),
                    node: NodeId(0),
                    local: true,
                },
            ),
            ev(
                100,
                TraceKind::MapStarted {
                    job,
                    task: TaskId(1),
                    node: NodeId(1),
                    local: false,
                },
            ),
            ev(
                500,
                TraceKind::MapFailed {
                    job,
                    task: TaskId(1),
                    attempt: 1,
                },
            ),
            ev(
                600,
                TraceKind::MapFinished {
                    job,
                    task: TaskId(0),
                },
            ),
            ev(700, TraceKind::EndOfInput { job }),
            ev(
                700,
                TraceKind::MapStarted {
                    job,
                    task: TaskId(1),
                    node: NodeId(2),
                    local: false,
                },
            ),
            ev(
                900,
                TraceKind::MapFinished {
                    job,
                    task: TaskId(1),
                },
            ),
            ev(
                1000,
                TraceKind::ReduceStarted {
                    job,
                    reduce: 0,
                    node: NodeId(0),
                },
            ),
            ev(1500, TraceKind::ReduceFinished { job, reduce: 0 }),
            ev(1500, TraceKind::JobCompleted { job, failed: false }),
        ]
    }

    #[test]
    fn timeline_summarises_phases() {
        let t = job_timeline(&sample_trace(), JobId(0)).unwrap();
        assert_eq!(t.submitted, SimTime::ZERO);
        assert_eq!(t.end_of_input, Some(SimTime::from_millis(700)));
        assert_eq!(t.completed, Some(SimTime::from_millis(1500)));
        assert_eq!(t.growth, vec![(SimTime::ZERO, 2)]);
        assert_eq!(t.maps, (3, 2, 1), "3 attempts, 2 finishes, 1 failure");
        assert_eq!(t.reduces, (1, 1));
    }

    #[test]
    fn timeline_of_unknown_job_is_none() {
        assert!(job_timeline(&sample_trace(), JobId(9)).is_none());
    }

    #[test]
    fn render_shows_occupancy_shape() {
        let out = render_timeline(&sample_trace(), 15);
        assert!(out.contains("job_0000 |"));
        let row = out.lines().find(|l| l.starts_with("job_0000")).unwrap();
        assert!(row.contains('2'), "two concurrent maps early: {row}");
        assert!(row.contains('.'), "idle tail during reduce: {row}");
    }

    #[test]
    fn render_empty_trace() {
        assert_eq!(render_timeline(&[], 10), "(empty trace)\n");
    }

    #[test]
    fn events_display_compactly() {
        let e = ev(
            100,
            TraceKind::MapStarted {
                job: JobId(1),
                task: TaskId(2),
                node: NodeId(3),
                local: false,
            },
        );
        assert_eq!(
            e.to_string(),
            "t+0.100s job_0001/m_000002 -> node3 (remote)"
        );
        let e = ev(
            0,
            TraceKind::JobCompleted {
                job: JobId(1),
                failed: true,
            },
        );
        assert!(e.to_string().ends_with("FAILED"));
    }
}
