//! The memoization plane: per-split map-output caching keyed by
//! `(job signature, block, version)`, the machinery behind incremental
//! recomputation over evolving data (DESIGN.md §13).
//!
//! A [`MemoStore`] remembers, for each `(signature, block)` pair, the
//! [`MapTaskResult`] the data plane produced at a specific block version,
//! plus the node whose local disk notionally holds that map output. A
//! re-submitted job with the same signature probes the store per split:
//!
//! * **hit** — same version: the attempt keeps its full simulated schedule
//!   (slot, overhead, disk, CPU stages) but skips host recomputation and
//!   merges the cached output through the shuffle's idempotent
//!   `merge_task` path, so warm results stay byte-identical to cold ones;
//! * **stale** — the block was rewritten since caching: the entry is dead,
//!   the split recomputes, and the trace records `SplitDirty`;
//! * **miss** — never computed under this signature: plain execution.
//!
//! Invalidation is by node death: cached map output lives on the node
//! that produced it (Hadoop semantics — completed-map output dies with
//! the TaskTracker), so [`MemoStore::invalidate_node`] drops every entry
//! the dead node held and the next probe recomputes.

use std::collections::HashMap;

use incmr_dfs::{BlockId, NodeId};

use crate::parallel::MapTaskResult;

/// One cached map output: the result, the block version it was computed
/// at, and the node holding it.
#[derive(Debug, Clone)]
pub struct MemoEntry {
    /// The block version the mapper saw.
    pub version: u32,
    /// The node whose local disk holds the cached map output.
    pub node: NodeId,
    /// The complete map-task result (pairs, counters) to replay.
    pub result: MapTaskResult,
}

/// Outcome of probing the store for one split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoProbe {
    /// Cached at the probed version — reusable.
    Hit,
    /// Cached, but at an older version: the split is dirty.
    Stale,
    /// Never cached under this signature.
    Miss,
}

/// Map-output memo store, shared across jobs of one runtime.
#[derive(Debug, Clone, Default)]
pub struct MemoStore {
    entries: HashMap<(u64, BlockId), MemoEntry>,
}

impl MemoStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoStore::default()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Classify a probe for `block` at `version` under `signature`.
    pub fn probe(&self, signature: u64, block: BlockId, version: u32) -> MemoProbe {
        match self.entries.get(&(signature, block)) {
            Some(e) if e.version == version => MemoProbe::Hit,
            Some(_) => MemoProbe::Stale,
            None => MemoProbe::Miss,
        }
    }

    /// The cached entry for `block` at exactly `version`, if any.
    pub fn get(&self, signature: u64, block: BlockId, version: u32) -> Option<&MemoEntry> {
        self.entries
            .get(&(signature, block))
            .filter(|e| e.version == version)
    }

    /// Cache (or refresh) the map output for `block` at `version`,
    /// held by `node`. A newer version replaces an older entry.
    pub fn insert(
        &mut self,
        signature: u64,
        block: BlockId,
        version: u32,
        node: NodeId,
        result: MapTaskResult,
    ) {
        self.entries.insert(
            (signature, block),
            MemoEntry {
                version,
                node,
                result,
            },
        );
    }

    /// Record that a cached entry was replayed by `node`: the replaying
    /// attempt's node now holds a live copy of the map output, so
    /// subsequent invalidation tracks the most recent holder.
    pub fn rehome(&mut self, signature: u64, block: BlockId, node: NodeId) {
        if let Some(e) = self.entries.get_mut(&(signature, block)) {
            e.node = node;
        }
    }

    /// Drop every entry whose holding node died (its stored map output is
    /// gone). Returns how many entries were invalidated.
    pub fn invalidate_node(&mut self, node: NodeId) -> u64 {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.node != node);
        (before - self.entries.len()) as u64
    }

    /// Node death under DataNode-death semantics: each entry the dead node
    /// held either moves to a surviving replica holder of its input block
    /// (`new_home(block)` — the holder can re-derive the cached output
    /// from its local replica) or, when no replica survives, is dropped.
    /// Returns `(rehomed, dropped)` counts; per-entry and therefore
    /// independent of iteration order.
    pub fn rehome_or_drop_node(
        &mut self,
        node: NodeId,
        mut new_home: impl FnMut(BlockId) -> Option<NodeId>,
    ) -> (u64, u64) {
        let mut rehomed = 0;
        let mut dropped = 0;
        self.entries.retain(|&(_, block), e| {
            if e.node != node {
                return true;
            }
            match new_home(block) {
                Some(survivor) => {
                    e.node = survivor;
                    rehomed += 1;
                    true
                }
                None => {
                    dropped += 1;
                    false
                }
            }
        });
        (rehomed, dropped)
    }
}

/// 64-bit FNV-1a over a byte stream — the same stable hash the shuffle
/// partitioner uses, applied here to job configurations.
fn fnv1a(init: u64, bytes: &[u8]) -> u64 {
    let mut h = init;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// Derive a job signature by hashing every conf `(key, value)` pair in
/// key order plus the reduce count. Deterministic across runs and
/// processes; two submissions with identical configuration collide by
/// construction, which is exactly the memo-sharing contract. Jobs wanting
/// a semantic identity set [`crate::conf::keys::JOB_SIGNATURE`] instead.
pub fn signature_of_conf<'a>(
    pairs: impl Iterator<Item = (&'a str, &'a str)>,
    reduce_tasks: u32,
) -> u64 {
    let mut h = FNV_OFFSET;
    for (k, v) in pairs {
        h = fnv1a(h, k.as_bytes());
        h = fnv1a(h, &[0xFF]);
        h = fnv1a(h, v.as_bytes());
        h = fnv1a(h, &[0xFE]);
    }
    fnv1a(h, &reduce_tasks.to_le_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(records: u64) -> MapTaskResult {
        MapTaskResult {
            records_read: records,
            ..MapTaskResult::default()
        }
    }

    #[test]
    fn probe_classifies_hit_stale_miss() {
        let mut store = MemoStore::new();
        assert_eq!(store.probe(1, BlockId(0), 0), MemoProbe::Miss);
        store.insert(1, BlockId(0), 0, NodeId(2), result(10));
        assert_eq!(store.probe(1, BlockId(0), 0), MemoProbe::Hit);
        assert_eq!(store.probe(1, BlockId(0), 1), MemoProbe::Stale);
        assert_eq!(
            store.probe(2, BlockId(0), 0),
            MemoProbe::Miss,
            "per-signature"
        );
        assert!(store.get(1, BlockId(0), 1).is_none());
        assert_eq!(store.get(1, BlockId(0), 0).unwrap().result.records_read, 10);
    }

    #[test]
    fn newer_version_replaces_older_entry() {
        let mut store = MemoStore::new();
        store.insert(1, BlockId(3), 0, NodeId(0), result(10));
        store.insert(1, BlockId(3), 2, NodeId(1), result(20));
        assert_eq!(store.len(), 1, "one live entry per (signature, block)");
        assert_eq!(store.probe(1, BlockId(3), 0), MemoProbe::Stale);
        assert_eq!(store.probe(1, BlockId(3), 2), MemoProbe::Hit);
    }

    #[test]
    fn node_death_invalidates_exactly_its_entries() {
        let mut store = MemoStore::new();
        store.insert(1, BlockId(0), 0, NodeId(0), result(1));
        store.insert(1, BlockId(1), 0, NodeId(1), result(2));
        store.insert(2, BlockId(2), 0, NodeId(0), result(3));
        assert_eq!(store.invalidate_node(NodeId(0)), 2);
        assert_eq!(store.len(), 1);
        assert_eq!(store.probe(1, BlockId(0), 0), MemoProbe::Miss);
        assert_eq!(store.probe(1, BlockId(1), 0), MemoProbe::Hit);
        assert_eq!(store.invalidate_node(NodeId(9)), 0);
    }

    #[test]
    fn rehome_moves_the_invalidation_target() {
        let mut store = MemoStore::new();
        store.insert(1, BlockId(0), 0, NodeId(0), result(1));
        store.rehome(1, BlockId(0), NodeId(5));
        assert_eq!(store.invalidate_node(NodeId(0)), 0, "old holder irrelevant");
        assert_eq!(store.invalidate_node(NodeId(5)), 1);
    }

    #[test]
    fn rehome_or_drop_moves_survivors_and_drops_the_rest() {
        let mut store = MemoStore::new();
        store.insert(1, BlockId(0), 0, NodeId(0), result(1)); // replica survives
        store.insert(1, BlockId(1), 0, NodeId(0), result(2)); // last replica lost
        store.insert(1, BlockId(2), 0, NodeId(3), result(3)); // other holder
        let (rehomed, dropped) =
            store.rehome_or_drop_node(NodeId(0), |b| (b == BlockId(0)).then_some(NodeId(7)));
        assert_eq!((rehomed, dropped), (1, 1));
        assert_eq!(store.len(), 2);
        assert_eq!(store.probe(1, BlockId(0), 0), MemoProbe::Hit);
        assert_eq!(store.probe(1, BlockId(1), 0), MemoProbe::Miss);
        assert_eq!(store.invalidate_node(NodeId(7)), 1, "entry moved home");
    }

    #[test]
    fn conf_signature_is_stable_and_sensitive() {
        let pairs = [("a", "1"), ("b", "2")];
        let sig = |ps: &[(&'static str, &'static str)], r| {
            signature_of_conf(ps.iter().map(|&(k, v)| (k, v)), r)
        };
        assert_eq!(sig(&pairs, 1), sig(&pairs, 1));
        assert_ne!(sig(&pairs, 1), sig(&pairs, 2), "reduce count matters");
        assert_ne!(sig(&pairs, 1), sig(&[("a", "1"), ("b", "3")], 1));
        // Separators keep ("ab","c") distinct from ("a","bc").
        assert_ne!(sig(&[("ab", "c")], 1), sig(&[("a", "bc")], 1));
    }
}
