//! Task schedulers: how free map slots are matched to pending map tasks.
//!
//! "In Hadoop, the task of assigning empty slots to the pending tasks is
//! handled by the TaskScheduler. The default implementation provided by
//! Hadoop is based on FIFO … One of the prominently used alternate
//! scheduler implementations is the Fair Scheduler" (paper Section V-F).
//! Both are provided: [`fifo::FifoScheduler`] and [`fair::FairScheduler`]
//! (the latter with delay scheduling, which is what produces the paper's
//! high-locality / low-occupancy behaviour).
//!
//! ## The scheduling view
//!
//! A throughput experiment runs hundreds of thousands of scheduling points
//! against jobs with hundreds of queued tasks, so the view handed to
//! schedulers is *indexed*, not flat — mirroring Hadoop's per-node task
//! caches:
//!
//! * [`SchedJob::head`] — the front of the job's pending queue in addition
//!   order (enough tasks to fill every free slot), used for non-local
//!   launches;
//! * [`SchedJob::local_by_node`] — for each node that currently has free
//!   slots, pending tasks whose input split is stored on that node, used
//!   for data-local launches.
//!
//! A scheduler must never assign the same task twice or exceed a node's
//! free slots; the runtime validates both in debug builds. Dead nodes
//! never appear with free slots (the runtime zeroes them), and a job that
//! has blacklisted a node flags it in [`SchedJob::banned_nodes`] — no task
//! of that job may be assigned there.

pub mod fair;
pub mod fifo;
pub mod indexed;
#[cfg(test)]
mod proptests;

pub use fair::FairScheduler;
pub use fifo::FifoScheduler;
pub use indexed::{IndexedFairScheduler, IndexedFifoScheduler};

use std::collections::{HashMap, HashSet};

use incmr_dfs::NodeId;
use incmr_simkit::SimTime;

use crate::job::{JobId, TaskId};

/// Tasks claimed so far within one scheduling point, with a per-job count
/// so [`SchedJob::unclaimed`] is O(1) instead of a scan over every claim.
///
/// At 10k queued jobs the old `HashSet<(JobId, TaskId)>`-only bookkeeping
/// made `unclaimed` — called once per job per free slot — an O(claims)
/// filter, which dominated dispatch cost. `Claims` keeps the same
/// membership set plus a per-job counter, both updated in O(1).
#[derive(Debug, Clone, Default)]
pub struct Claims {
    taken: HashSet<(JobId, TaskId)>,
    per_job: HashMap<JobId, u32>,
}

impl Claims {
    /// An empty claim set.
    pub fn new() -> Self {
        Claims::default()
    }

    /// Claim `task` of `job`. Returns `false` (and changes nothing) if it
    /// was already claimed.
    pub fn claim(&mut self, job: JobId, task: TaskId) -> bool {
        let fresh = self.taken.insert((job, task));
        if fresh {
            *self.per_job.entry(job).or_insert(0) += 1;
        }
        fresh
    }

    /// Whether `task` of `job` has been claimed this round.
    pub fn contains(&self, job: JobId, task: TaskId) -> bool {
        self.taken.contains(&(job, task))
    }

    /// How many tasks of `job` have been claimed this round (O(1)).
    pub fn claimed(&self, job: JobId) -> u32 {
        self.per_job.get(&job).copied().unwrap_or(0)
    }
}

/// What subset of runnable jobs a scheduler needs in its [`SchedView`].
///
/// The runtime keeps every runnable job in ordered indexes; at a
/// scheduling point it materialises only a *prefix* of the matching order
/// — enough jobs to fill every free slot plus slack for bans — instead of
/// the whole queue. Which order the prefix is cut from depends on the
/// scheduler's dispatch rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewPolicy {
    /// Offer every runnable job (custom or test schedulers; no prefix
    /// optimisation).
    Complete,
    /// A prefix in submission order (FIFO-family: only the oldest jobs
    /// with pending work can win a slot).
    SubmitOrder,
    /// A prefix in (running tasks, submission order) — fair-share order:
    /// only the most-starved jobs can win a slot.
    ShareOrder,
}

/// Scheduler-visible state of one job.
#[derive(Debug, Clone)]
pub struct SchedJob {
    /// The job.
    pub job: JobId,
    /// Monotone submission sequence (FIFO order).
    pub submit_seq: u64,
    /// Map tasks currently running (fair-share accounting).
    pub running: u32,
    /// Total pending tasks (may exceed what the indexes expose).
    pub pending_total: u32,
    /// Front of the pending queue, in addition order (capped).
    pub head: Vec<TaskId>,
    /// For each head task, whether it has **no** replica anywhere (such
    /// tasks have no locality to wait for). Parallel to `head`.
    pub head_replica_less: Vec<bool>,
    /// Per-node local pending candidates, indexed by `NodeId.0` (only
    /// populated for nodes with free slots; capped per node).
    pub local_by_node: Vec<Vec<TaskId>>,
    /// Nodes this job has blacklisted, indexed by `NodeId.0` (empty when
    /// the job bans nothing). Schedulers must skip this job on such nodes.
    pub banned_nodes: Vec<bool>,
}

impl SchedJob {
    /// Whether this job has blacklisted `node`.
    pub fn banned_on(&self, node: NodeId) -> bool {
        self.banned_nodes
            .get(node.0 as usize)
            .copied()
            .unwrap_or(false)
    }

    /// A pending task local to `node`, excluding those already claimed.
    /// Allocation-free: a bounded walk over the capped per-node index with
    /// O(1) membership checks.
    pub fn local_candidate(&self, node: NodeId, claims: &Claims) -> Option<TaskId> {
        self.local_by_node
            .get(node.0 as usize)?
            .iter()
            .copied()
            .find(|t| !claims.contains(self.job, *t))
    }

    /// The first head task not yet claimed this round, with its
    /// replica-less flag.
    pub fn head_candidate_flagged(&self, claims: &Claims) -> Option<(TaskId, bool)> {
        self.head
            .iter()
            .zip(&self.head_replica_less)
            .find(|(t, _)| !claims.contains(self.job, **t))
            .map(|(t, r)| (*t, *r))
    }

    /// The first head task not yet claimed this round.
    pub fn head_candidate(&self, claims: &Claims) -> Option<TaskId> {
        self.head_candidate_flagged(claims).map(|(t, _)| t)
    }

    /// Pending tasks not yet claimed this round. O(1): the per-job claim
    /// counter replaces the old scan over every claim of every job.
    pub fn unclaimed(&self, claims: &Claims) -> u32 {
        self.pending_total.saturating_sub(claims.claimed(self.job))
    }
}

/// Everything a scheduler sees at a scheduling point.
#[derive(Debug, Clone)]
pub struct SchedView {
    /// Current time (drives delay scheduling).
    pub now: SimTime,
    /// Free map slots per node (indexed by `NodeId.0`).
    pub free_slots: Vec<u32>,
    /// Jobs with pending work, in submission order.
    pub jobs: Vec<SchedJob>,
    /// Whether `jobs` holds **every** runnable job, or only the prefix the
    /// scheduler's [`ViewPolicy`] asked for. Stateful schedulers must not
    /// garbage-collect per-job state (e.g. delay-scheduling wait clocks)
    /// based on absence from an incomplete view.
    pub complete: bool,
}

impl SchedView {
    /// Total free slots across the cluster.
    pub fn total_free(&self) -> u32 {
        self.free_slots.iter().sum()
    }
}

/// One slot-to-task binding decided by a scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// The job owning the task.
    pub job: JobId,
    /// The assigned task.
    pub task: TaskId,
    /// The node whose slot it takes.
    pub node: NodeId,
}

/// A task-scheduling policy.
pub trait TaskScheduler {
    /// Human-readable name. Besides reports, this keys the runtime's
    /// per-scheduler queue-wait histograms
    /// ([`MetricsRegistry::queue_wait`](crate::obs::MetricsRegistry::queue_wait)),
    /// so two runs are comparable only if their schedulers report stable
    /// names.
    fn name(&self) -> &'static str;
    /// Decide assignments for this scheduling point.
    fn assign(&mut self, view: &SchedView) -> Vec<Assignment>;
    /// Scheduler-imposed cap on map launches per tracker heartbeat, if it
    /// overrides the cluster default. Hadoop's Fair Scheduler assigned one
    /// task per heartbeat (`assignmultiple` defaulted off), which is the
    /// launch-rate ceiling behind its low measured slot occupancy.
    fn maps_per_heartbeat(&self) -> Option<u32> {
        None
    }
    /// Which subset of runnable jobs this scheduler needs offered in its
    /// view. The default — every runnable job — is always correct; the
    /// built-in schedulers declare the order their dispatch rule consumes
    /// so the runtime can hand them an O(free slots) prefix instead of the
    /// whole queue.
    fn view_policy(&self) -> ViewPolicy {
        ViewPolicy::Complete
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// Build a `SchedJob` from `(task, local_nodes)` pairs, computing the
    /// head and per-node indexes the way the runtime does.
    pub fn sched_job(
        job: u32,
        seq: u64,
        running: u32,
        tasks: &[(u32, &[u16])],
        nodes: usize,
    ) -> SchedJob {
        let mut local_by_node = vec![Vec::new(); nodes];
        let mut head = Vec::new();
        let mut head_replica_less = Vec::new();
        for (task, locals) in tasks {
            head.push(TaskId(*task));
            head_replica_less.push(locals.is_empty());
            for &n in *locals {
                local_by_node[n as usize].push(TaskId(*task));
            }
        }
        SchedJob {
            job: JobId(job),
            submit_seq: seq,
            running,
            pending_total: tasks.len() as u32,
            head,
            head_replica_less,
            local_by_node,
            banned_nodes: Vec::new(),
        }
    }

    /// Sanity-check an assignment list against a view: slot limits and
    /// task uniqueness.
    pub fn validate(view: &SchedView, assignments: &[Assignment]) {
        let mut free = view.free_slots.clone();
        let mut seen = HashSet::new();
        for a in assignments {
            assert!(
                free[a.node.0 as usize] > 0,
                "node {:?} over-assigned",
                a.node
            );
            free[a.node.0 as usize] -= 1;
            assert!(seen.insert((a.job, a.task)), "task assigned twice: {a:?}");
            let job = view
                .jobs
                .iter()
                .find(|j| j.job == a.job)
                .expect("job exists");
            let known =
                job.head.contains(&a.task) || job.local_by_node.iter().any(|l| l.contains(&a.task));
            assert!(known, "assigned task was not offered in the view");
            assert!(
                !job.banned_on(a.node),
                "task assigned to a node its job blacklisted: {a:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::sched_job;
    use super::*;

    #[test]
    fn candidates_respect_claims() {
        let j = sched_job(0, 0, 0, &[(1, &[2]), (2, &[2])], 4);
        let mut claims = Claims::new();
        assert_eq!(j.local_candidate(NodeId(2), &claims), Some(TaskId(1)));
        assert!(claims.claim(JobId(0), TaskId(1)));
        assert!(!claims.claim(JobId(0), TaskId(1)), "double claim rejected");
        assert_eq!(j.local_candidate(NodeId(2), &claims), Some(TaskId(2)));
        assert_eq!(j.head_candidate(&claims), Some(TaskId(2)));
        assert_eq!(j.unclaimed(&claims), 1);
        claims.claim(JobId(0), TaskId(2));
        assert_eq!(j.local_candidate(NodeId(2), &claims), None);
        assert_eq!(j.unclaimed(&claims), 0);
    }

    #[test]
    fn claims_count_per_job() {
        let mut claims = Claims::new();
        claims.claim(JobId(3), TaskId(0));
        claims.claim(JobId(3), TaskId(1));
        claims.claim(JobId(4), TaskId(0));
        assert_eq!(claims.claimed(JobId(3)), 2);
        assert_eq!(claims.claimed(JobId(4)), 1);
        assert_eq!(claims.claimed(JobId(5)), 0);
        assert!(claims.contains(JobId(3), TaskId(1)));
        assert!(!claims.contains(JobId(4), TaskId(1)));
    }

    #[test]
    fn local_candidate_out_of_range_node_is_none() {
        let j = sched_job(0, 0, 0, &[(1, &[0])], 2);
        assert_eq!(j.local_candidate(NodeId(7), &Claims::new()), None);
    }

    #[test]
    fn banned_on_defaults_to_open() {
        let mut j = sched_job(0, 0, 0, &[(1, &[0])], 2);
        assert!(!j.banned_on(NodeId(0)));
        assert!(!j.banned_on(NodeId(9)), "out of range = not banned");
        j.banned_nodes = vec![false, true];
        assert!(j.banned_on(NodeId(1)));
        assert!(!j.banned_on(NodeId(0)));
    }

    #[test]
    fn view_total_free() {
        let v = SchedView {
            now: SimTime::ZERO,
            free_slots: vec![2, 0, 3],
            jobs: vec![],
            complete: true,
        };
        assert_eq!(v.total_free(), 5);
    }
}
