//! Hadoop's default scheduler: strict job-submission order ("slots being
//! assigned in order of a job's submission timestamp", Section V-F).
//!
//! For each free slot the earliest-submitted job with pending work is
//! served. The scheduler prefers a node-local task of that job when one
//! exists, but will happily run a non-local task rather than leave the slot
//! idle — which is why its locality is mediocre (the paper measured 57%)
//! while its slot occupancy is high (44%).

use incmr_dfs::NodeId;

use super::{Assignment, Claims, SchedView, TaskScheduler, ViewPolicy};

/// The FIFO scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct FifoScheduler;

impl FifoScheduler {
    /// Create a FIFO scheduler.
    pub fn new() -> Self {
        FifoScheduler
    }
}

impl TaskScheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn view_policy(&self) -> ViewPolicy {
        ViewPolicy::SubmitOrder
    }

    // The index is also used to mutate `free` mid-loop; an iterator would
    // fight the borrow checker for no clarity gain.
    #[allow(clippy::needless_range_loop)]
    fn assign(&mut self, view: &SchedView) -> Vec<Assignment> {
        let mut assignments = Vec::new();
        let mut free = view.free_slots.clone();
        let mut claims = Claims::new();
        let mut order: Vec<usize> = (0..view.jobs.len()).collect();
        order.sort_by_key(|&i| view.jobs[i].submit_seq);

        // Round-robin the nodes so one node does not soak up a whole job.
        loop {
            let mut assigned_any = false;
            for node_idx in 0..free.len() {
                if free[node_idx] == 0 {
                    continue;
                }
                let node = NodeId(node_idx as u16);
                if order.iter().all(|&i| view.jobs[i].unclaimed(&claims) == 0) {
                    return assignments;
                }
                // Earliest job with unclaimed pending work that has not
                // blacklisted this node (a banned job may still be served
                // by other nodes, so only skip it here).
                let Some(&job_idx) = order.iter().find(|&&i| {
                    view.jobs[i].unclaimed(&claims) > 0 && !view.jobs[i].banned_on(node)
                }) else {
                    continue;
                };
                let job = &view.jobs[job_idx];
                // Prefer a task local to this node; otherwise take the head.
                let Some(task) = job
                    .local_candidate(node, &claims)
                    .or_else(|| job.head_candidate(&claims))
                else {
                    // The view's capped indexes are exhausted for this job
                    // even though more tasks pend; stop this round — the
                    // next scheduling point sees a fresh view.
                    return assignments;
                };
                claims.claim(job.job, task);
                assignments.push(Assignment {
                    job: job.job,
                    task,
                    node,
                });
                free[node_idx] -= 1;
                assigned_any = true;
            }
            if !assigned_any {
                return assignments;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{sched_job, validate};
    use super::super::SchedView;
    use super::*;
    use crate::job::{JobId, TaskId};
    use incmr_simkit::SimTime;

    fn view(free: Vec<u32>, jobs: Vec<super::super::SchedJob>) -> SchedView {
        SchedView {
            now: SimTime::ZERO,
            free_slots: free,
            jobs,
            complete: true,
        }
    }

    #[test]
    fn earliest_job_is_served_first() {
        let v = view(
            vec![1],
            vec![
                sched_job(1, 10, 0, &[(0, &[0])], 1),
                sched_job(0, 5, 0, &[(0, &[0])], 1),
            ],
        );
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].job, JobId(0), "lower submit_seq wins");
    }

    #[test]
    fn prefers_local_tasks_per_node() {
        // Node 1 free; the job's task 1 is local to node 1.
        let v = view(
            vec![0, 1],
            vec![sched_job(0, 0, 0, &[(0, &[0]), (1, &[1])], 2)],
        );
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(
            a,
            vec![Assignment {
                job: JobId(0),
                task: TaskId(1),
                node: NodeId(1)
            }]
        );
    }

    #[test]
    fn falls_back_to_non_local_rather_than_idling() {
        let v = view(vec![1], vec![sched_job(0, 0, 0, &[(0, &[5])], 6)]);
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1, "FIFO never leaves a slot idle while work pends");
        assert_eq!(a[0].node, NodeId(0));
    }

    #[test]
    fn fills_all_slots_across_nodes() {
        let tasks: Vec<(u32, &[u16])> = (0..6).map(|i| (i, &[][..])).collect();
        let v = view(vec![2, 2, 2], vec![sched_job(0, 0, 0, &tasks, 3)]);
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 6);
    }

    #[test]
    fn later_jobs_get_leftovers() {
        let v = view(
            vec![3],
            vec![
                sched_job(0, 0, 0, &[(0, &[]), (1, &[])], 1),
                sched_job(1, 1, 0, &[(0, &[])], 1),
            ],
        );
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 3);
        assert_eq!(a.iter().filter(|x| x.job == JobId(0)).count(), 2);
        assert_eq!(a.iter().filter(|x| x.job == JobId(1)).count(), 1);
    }

    #[test]
    fn no_work_no_assignments() {
        let v = view(vec![4, 4], vec![]);
        assert!(FifoScheduler::new().assign(&v).is_empty());
    }

    #[test]
    fn blacklisted_node_serves_the_next_job_instead() {
        let mut banned = sched_job(0, 0, 0, &[(0, &[0])], 1);
        banned.banned_nodes = vec![true];
        let v = view(vec![2], vec![banned, sched_job(1, 1, 0, &[(0, &[])], 1)]);
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1, "only the unbanned job may use node 0");
        assert_eq!(a[0].job, JobId(1));
    }

    #[test]
    fn job_banned_everywhere_leaves_slots_idle() {
        let mut banned = sched_job(0, 0, 0, &[(0, &[]), (1, &[])], 2);
        banned.banned_nodes = vec![true, true];
        let v = view(vec![1, 1], vec![banned]);
        assert!(FifoScheduler::new().assign(&v).is_empty());
    }

    #[test]
    fn same_task_in_head_and_local_index_assigned_once() {
        // Task 0 is both the head task and local to node 0.
        let v = view(vec![2], vec![sched_job(0, 0, 0, &[(0, &[0])], 1)]);
        let a = FifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
    }
}
