//! Indexed re-implementations of the FIFO and Fair dispatch rules.
//!
//! The linear schedulers re-derive their dispatch order from scratch at
//! every decision: FIFO re-sorts jobs by submission sequence, Fair
//! re-filters and re-sorts by `(running, submit_seq)` once per free slot.
//! At the multi-tenant service's scale — thousands of queued dynamic jobs
//! — that per-slot re-sort dominates heartbeat cost.
//!
//! The indexed variants keep the dispatch order in a `BTreeSet` run-queue
//! instead:
//!
//! * [`IndexedFifoScheduler`] — keyed by `(submit_seq, view index)`; a job
//!   leaves the queue the moment its last offered task is claimed.
//! * [`IndexedFairScheduler`] — keyed by `(running, submit_seq, view
//!   index)`, the fair-share deficit order; a launch re-keys the job in
//!   O(log n) rather than re-sorting everything.
//!
//! Both are **assignment-for-assignment equivalent** to their linear
//! counterparts on every view — pinned by the equivalence proptests in
//! `scheduler::proptests`, with the linear implementations as oracle. They
//! also report the same [`TaskScheduler::name`] (the policy is identical;
//! only the data structure differs), so queue-wait histograms stay
//! comparable across implementations.

use std::collections::{BTreeSet, HashMap};

use incmr_dfs::NodeId;
use incmr_simkit::{SimDuration, SimTime};

use crate::job::JobId;

use super::{Assignment, Claims, SchedView, TaskScheduler, ViewPolicy};

/// FIFO dispatch over an indexed run-queue.
///
/// Same policy as [`super::FifoScheduler`] — earliest-submitted job with
/// unclaimed pending work wins each slot, local task preferred — but the
/// "earliest with work" lookup is the head of a `BTreeSet` rather than a
/// scan over every job.
#[derive(Debug, Clone, Copy, Default)]
pub struct IndexedFifoScheduler;

impl IndexedFifoScheduler {
    /// Create an indexed FIFO scheduler.
    pub fn new() -> Self {
        IndexedFifoScheduler
    }
}

impl TaskScheduler for IndexedFifoScheduler {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn view_policy(&self) -> ViewPolicy {
        ViewPolicy::SubmitOrder
    }

    // The index is also used to mutate `free` mid-loop; an iterator would
    // fight the borrow checker for no clarity gain.
    #[allow(clippy::needless_range_loop)]
    fn assign(&mut self, view: &SchedView) -> Vec<Assignment> {
        let mut assignments = Vec::new();
        let mut free = view.free_slots.clone();
        let mut claims = Claims::new();
        // Jobs with unclaimed work, in (submit_seq, view index) order —
        // the same order the linear scheduler's stable sort produces.
        let mut live: BTreeSet<(u64, usize)> = view
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.pending_total > 0)
            .map(|(i, j)| (j.submit_seq, i))
            .collect();

        // Round-robin the nodes so one node does not soak up a whole job.
        loop {
            let mut assigned_any = false;
            for node_idx in 0..free.len() {
                if free[node_idx] == 0 {
                    continue;
                }
                let node = NodeId(node_idx as u16);
                if live.is_empty() {
                    return assignments;
                }
                // Earliest live job that has not blacklisted this node.
                let Some(&(seq, job_idx)) =
                    live.iter().find(|&&(_, i)| !view.jobs[i].banned_on(node))
                else {
                    continue;
                };
                let job = &view.jobs[job_idx];
                let Some(task) = job
                    .local_candidate(node, &claims)
                    .or_else(|| job.head_candidate(&claims))
                else {
                    // Capped indexes exhausted for this job — stop the
                    // round, exactly as the linear implementation does.
                    return assignments;
                };
                claims.claim(job.job, task);
                if job.unclaimed(&claims) == 0 {
                    live.remove(&(seq, job_idx));
                }
                assignments.push(Assignment {
                    job: job.job,
                    task,
                    node,
                });
                free[node_idx] -= 1;
                assigned_any = true;
            }
            if !assigned_any {
                return assignments;
            }
        }
    }
}

/// Fair dispatch with delay scheduling over an indexed run-queue.
///
/// Same policy as [`super::FairScheduler`] — slots go to the most-starved
/// job, non-local launches wait out the locality delay — but the fairness
/// order lives in a `BTreeSet` keyed by `(running, submit_seq, view
/// index)`: a launch removes and re-inserts one key instead of re-sorting
/// the whole contender list per slot.
#[derive(Debug, Clone)]
pub struct IndexedFairScheduler {
    locality_delay: SimDuration,
    /// When each job first declined a non-local slot (cleared on any
    /// launch).
    waiting_since: HashMap<JobId, SimTime>,
}

impl IndexedFairScheduler {
    /// An indexed fair scheduler that waits at most `locality_delay` for a
    /// local slot before accepting a non-local one.
    pub fn new(locality_delay: SimDuration) -> Self {
        IndexedFairScheduler {
            locality_delay,
            waiting_since: HashMap::new(),
        }
    }

    /// The paper-shaped configuration (15 s delay), matching
    /// [`super::FairScheduler::paper_default`].
    pub fn paper_default() -> Self {
        IndexedFairScheduler::new(SimDuration::from_secs(15))
    }
}

impl TaskScheduler for IndexedFairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn maps_per_heartbeat(&self) -> Option<u32> {
        // `mapred.fairscheduler.assignmultiple = false` in the 0.20 era.
        Some(1)
    }

    fn view_policy(&self) -> ViewPolicy {
        ViewPolicy::ShareOrder
    }

    // The index is also used to mutate `free` mid-loop; an iterator would
    // fight the borrow checker for no clarity gain.
    #[allow(clippy::needless_range_loop)]
    fn assign(&mut self, view: &SchedView) -> Vec<Assignment> {
        // Wait-clock GC needs proof of absence, which only a complete view
        // gives (see `FairScheduler::assign`).
        if view.complete {
            self.waiting_since
                .retain(|j, _| view.jobs.iter().any(|sj| sj.job == *j));
        }
        let mut assignments = Vec::new();
        let mut free = view.free_slots.clone();
        let mut running: Vec<u32> = view.jobs.iter().map(|j| j.running).collect();
        let mut claims = Claims::new();
        // The fairness run-queue: jobs with unclaimed work keyed by
        // (running, submit_seq, view index) — identical order to the
        // linear scheduler's per-slot stable sort.
        let mut queue: BTreeSet<(u32, u64, usize)> = view
            .jobs
            .iter()
            .enumerate()
            .filter(|(_, j)| j.pending_total > 0)
            .map(|(i, j)| (j.running, j.submit_seq, i))
            .collect();

        for node_idx in 0..free.len() {
            while free[node_idx] > 0 {
                if queue.is_empty() {
                    return assignments;
                }
                let node = NodeId(node_idx as u16);
                // Offer the slot in fairness order; remember the first
                // launchable (key, task) pair, touching the wait clock of
                // every decliner before it — exactly the linear walk.
                let mut launch: Option<((u32, u64, usize), crate::job::TaskId)> = None;
                for &(r, seq, i) in queue.iter() {
                    let job = &view.jobs[i];
                    // A blacklisted node is not a locality decline: skip
                    // without touching the wait clock.
                    if job.banned_on(node) {
                        continue;
                    }
                    let local = job.local_candidate(node, &claims);
                    let task = match local {
                        Some(t) => Some(t),
                        None => {
                            let head = job.head_candidate_flagged(&claims);
                            let waited = self
                                .waiting_since
                                .get(&job.job)
                                .map(|&since| view.now - since >= self.locality_delay)
                                .unwrap_or(false);
                            match head {
                                Some((t, replica_less)) if replica_less || waited => Some(t),
                                _ => None,
                            }
                        }
                    };
                    if let Some(task) = task {
                        launch = Some(((r, seq, i), task));
                        break;
                    }
                    // Decline: start (or continue) the wait clock.
                    self.waiting_since.entry(job.job).or_insert(view.now);
                }
                let Some(((r, seq, i), task)) = launch else {
                    // Every job declined this node; try the next one.
                    break;
                };
                let job = &view.jobs[i];
                claims.claim(job.job, task);
                assignments.push(Assignment {
                    job: job.job,
                    task,
                    node,
                });
                free[node_idx] -= 1;
                queue.remove(&(r, seq, i));
                running[i] += 1;
                if job.unclaimed(&claims) > 0 {
                    queue.insert((running[i], seq, i));
                }
                self.waiting_since.remove(&job.job);
            }
        }
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{sched_job, validate};
    use super::super::SchedView;
    use super::*;
    use crate::job::TaskId;

    fn view(now: SimTime, free: Vec<u32>, jobs: Vec<super::super::SchedJob>) -> SchedView {
        SchedView {
            now,
            free_slots: free,
            jobs,
            complete: true,
        }
    }

    #[test]
    fn indexed_fifo_serves_earliest_job_first() {
        let v = view(
            SimTime::ZERO,
            vec![1],
            vec![
                sched_job(1, 10, 0, &[(0, &[0])], 1),
                sched_job(0, 5, 0, &[(0, &[0])], 1),
            ],
        );
        let a = IndexedFifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].job, JobId(0), "lower submit_seq wins");
    }

    #[test]
    fn indexed_fifo_prefers_local_tasks() {
        let v = view(
            SimTime::ZERO,
            vec![0, 1],
            vec![sched_job(0, 0, 0, &[(0, &[0]), (1, &[1])], 2)],
        );
        let a = IndexedFifoScheduler::new().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task, TaskId(1));
        assert_eq!(a[0].node, NodeId(1));
    }

    #[test]
    fn indexed_fair_starved_job_wins() {
        let v = view(
            SimTime::ZERO,
            vec![1],
            vec![
                sched_job(0, 0, 5, &[(0, &[0])], 1),
                sched_job(1, 1, 0, &[(0, &[0])], 1),
            ],
        );
        let a = IndexedFairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].job, JobId(1), "fewest running tasks wins the slot");
    }

    #[test]
    fn indexed_fair_declines_then_accepts_after_delay() {
        let mut s = IndexedFairScheduler::paper_default();
        let v0 = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        assert!(s.assign(&v0).is_empty(), "first offer is declined");
        let v1 = view(
            SimTime::from_secs(16),
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        let a = s.assign(&v1);
        validate(&v1, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].node, NodeId(0), "non-local launch after the delay");
    }

    #[test]
    fn indexed_fair_rekeys_launched_jobs() {
        // Two jobs, four replica-less tasks each, four slots on one node:
        // fair share must alternate 2/2, which requires the launched job
        // to be re-keyed behind its rival after every launch.
        let tasks: Vec<(u32, &[u16])> = (0..4).map(|i| (i, &[][..])).collect();
        let v = view(
            SimTime::ZERO,
            vec![4],
            vec![sched_job(0, 0, 0, &tasks, 1), sched_job(1, 1, 0, &tasks, 1)],
        );
        let a = IndexedFairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().filter(|x| x.job == JobId(0)).count(), 2);
        assert_eq!(a.iter().filter(|x| x.job == JobId(1)).count(), 2);
    }

    #[test]
    fn incomplete_view_keeps_wait_clocks_alive() {
        let mut s = IndexedFairScheduler::paper_default();
        // Decline at t=0 starts job 0's wait clock.
        let v0 = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        assert!(s.assign(&v0).is_empty());
        // An incomplete prefix view that omits job 0 must NOT drop its
        // clock...
        let mut v1 = view(
            SimTime::from_secs(5),
            vec![0, 0],
            vec![sched_job(7, 7, 0, &[(0, &[0])], 2)],
        );
        v1.complete = false;
        let _ = s.assign(&v1);
        // ...so at t=16 the matured clock still launches non-locally.
        let v2 = view(
            SimTime::from_secs(16),
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        let a = s.assign(&v2);
        assert_eq!(a.len(), 1, "wait clock survived the incomplete view");
    }

    #[test]
    fn complete_view_gcs_departed_jobs() {
        let mut s = IndexedFairScheduler::paper_default();
        let v0 = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        assert!(s.assign(&v0).is_empty());
        assert_eq!(s.waiting_since.len(), 1);
        // A complete view without job 0 proves it left; the clock is GCed.
        let v1 = view(SimTime::from_secs(5), vec![0], vec![]);
        let _ = s.assign(&v1);
        assert!(s.waiting_since.is_empty(), "departed job's clock dropped");
    }
}
