//! Property-based tests of the scheduler contract: for *any* view, both
//! schedulers produce assignments that respect slot limits, never assign a
//! task twice, only assign offered tasks, and are deterministic.

use proptest::prelude::*;
use std::collections::HashSet;

use incmr_dfs::NodeId;
use incmr_simkit::SimTime;

use super::{FairScheduler, FifoScheduler, SchedJob, SchedView, TaskScheduler};
use crate::job::{JobId, TaskId};

/// Strategy: a random scheduling view over `nodes` nodes.
fn arb_view(
    max_nodes: usize,
    max_jobs: usize,
    max_tasks: usize,
) -> impl Strategy<Value = SchedView> {
    (1..=max_nodes, 0..=max_jobs).prop_flat_map(move |(nodes, jobs)| {
        let free = prop::collection::vec(0u32..4, nodes);
        let job = (
            0u32..8,
            prop::collection::vec(
                (any::<u8>(), prop::collection::vec(0..nodes as u16, 0..3)),
                0..=max_tasks,
            ),
        );
        let jobs = prop::collection::vec(job, jobs);
        (free, jobs).prop_map(move |(free_slots, jobs)| {
            let jobs = jobs
                .into_iter()
                .enumerate()
                .map(|(j, (running, tasks))| {
                    let mut local_by_node = vec![Vec::new(); free_slots.len()];
                    let mut head = Vec::new();
                    let mut head_replica_less = Vec::new();
                    for (t, (_tag, locals)) in tasks.iter().enumerate() {
                        let id = TaskId(t as u32);
                        head.push(id);
                        head_replica_less.push(locals.is_empty());
                        for &n in locals {
                            local_by_node[n as usize].push(id);
                        }
                    }
                    SchedJob {
                        job: JobId(j as u32),
                        submit_seq: j as u64,
                        running,
                        pending_total: head.len() as u32,
                        head,
                        head_replica_less,
                        local_by_node,
                    }
                })
                .collect();
            SchedView {
                now: SimTime::from_secs(100),
                free_slots,
                jobs,
            }
        })
    })
}

fn check_contract(view: &SchedView, assignments: &[super::Assignment]) {
    let mut free = view.free_slots.clone();
    let mut seen = HashSet::new();
    for a in assignments {
        assert!(
            free[a.node.0 as usize] > 0,
            "over-assigned node {:?}",
            a.node
        );
        free[a.node.0 as usize] -= 1;
        assert!(seen.insert((a.job, a.task)), "double assignment {a:?}");
        let job = view
            .jobs
            .iter()
            .find(|j| j.job == a.job)
            .expect("known job");
        let offered =
            job.head.contains(&a.task) || job.local_by_node.iter().any(|l| l.contains(&a.task));
        assert!(offered, "assigned a task that was never offered");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fifo_respects_the_contract(view in arb_view(6, 5, 8)) {
        let assignments = FifoScheduler::new().assign(&view);
        check_contract(&view, &assignments);
    }

    #[test]
    fn fair_respects_the_contract(view in arb_view(6, 5, 8)) {
        let assignments = FairScheduler::paper_default().assign(&view);
        check_contract(&view, &assignments);
    }

    #[test]
    fn schedulers_are_deterministic(view in arb_view(6, 5, 8)) {
        prop_assert_eq!(FifoScheduler::new().assign(&view), FifoScheduler::new().assign(&view));
        prop_assert_eq!(
            FairScheduler::paper_default().assign(&view),
            FairScheduler::paper_default().assign(&view)
        );
    }

    /// FIFO is work-conserving: if any job offers a task every node can
    /// take (replica-less head), no slot stays free.
    #[test]
    fn fifo_fills_slots_when_tasks_are_unconstrained(free in prop::collection::vec(0u32..4, 1..6), tasks in 1usize..12) {
        let head: Vec<TaskId> = (0..tasks as u32).map(TaskId).collect();
        let view = SchedView {
            now: SimTime::ZERO,
            free_slots: free.clone(),
            jobs: vec![SchedJob {
                job: JobId(0),
                submit_seq: 0,
                running: 0,
                pending_total: tasks as u32,
                head,
                head_replica_less: vec![true; tasks],
                local_by_node: vec![Vec::new(); free.len()],
            }],
        };
        let assignments = FifoScheduler::new().assign(&view);
        let total_free: u32 = free.iter().sum();
        prop_assert_eq!(assignments.len() as u32, total_free.min(tasks as u32));
        check_contract(&view, &assignments);
    }

    /// The Fair Scheduler never assigns a replicated task non-locally on
    /// the first offer (the delay must mature first).
    #[test]
    fn fair_first_offer_is_never_non_local(nodes in 2usize..6, tasks in 1usize..6) {
        // All tasks local only to node 0; free slots only elsewhere.
        let head: Vec<TaskId> = (0..tasks as u32).map(TaskId).collect();
        let mut local_by_node = vec![Vec::new(); nodes];
        local_by_node[0] = head.clone();
        let mut free = vec![1u32; nodes];
        free[0] = 0;
        let view = SchedView {
            now: SimTime::from_secs(5),
            free_slots: free,
            jobs: vec![SchedJob {
                job: JobId(0),
                submit_seq: 0,
                running: 0,
                pending_total: tasks as u32,
                head,
                head_replica_less: vec![false; tasks],
                local_by_node,
            }],
        };
        let assignments = FairScheduler::paper_default().assign(&view);
        prop_assert!(assignments.is_empty(), "fresh fair scheduler must decline: {assignments:?}");
        let _ = NodeId(0);
    }
}
