//! Property-based tests of the scheduler contract: for *any* view, both
//! schedulers produce assignments that respect slot limits, never assign a
//! task twice, only assign offered tasks, never dispatch to a dead (zero
//! free slots) or blacklisted node, and are deterministic. The speculation
//! picker's one-backup-per-task rule is proptested alongside, and the
//! indexed schedulers are pinned assignment-for-assignment to the linear
//! implementations as oracle.

use proptest::prelude::*;
use std::collections::HashSet;

use incmr_dfs::NodeId;
use incmr_simkit::SimTime;

use super::{
    FairScheduler, FifoScheduler, IndexedFairScheduler, IndexedFifoScheduler, SchedJob, SchedView,
    TaskScheduler,
};
use crate::faults::{pick_speculative, SpecCandidate, SpeculationConfig};
use crate::job::{JobId, TaskId};

/// Strategy: a random scheduling view over `nodes` nodes.
fn arb_view(
    max_nodes: usize,
    max_jobs: usize,
    max_tasks: usize,
) -> impl Strategy<Value = SchedView> {
    (1..=max_nodes, 0..=max_jobs).prop_flat_map(move |(nodes, jobs)| {
        let free = prop::collection::vec(0u32..4, nodes);
        let job = (
            0u32..8,
            prop::collection::vec(
                (any::<u8>(), prop::collection::vec(0..nodes as u16, 0..3)),
                0..=max_tasks,
            ),
            prop::collection::vec(any::<bool>(), nodes),
        );
        let jobs = prop::collection::vec(job, jobs);
        (free, jobs).prop_map(move |(free_slots, jobs)| {
            let jobs = jobs
                .into_iter()
                .enumerate()
                .map(|(j, (running, tasks, banned_nodes))| {
                    let mut local_by_node = vec![Vec::new(); free_slots.len()];
                    let mut head = Vec::new();
                    let mut head_replica_less = Vec::new();
                    for (t, (_tag, locals)) in tasks.iter().enumerate() {
                        let id = TaskId(t as u32);
                        head.push(id);
                        head_replica_less.push(locals.is_empty());
                        for &n in locals {
                            local_by_node[n as usize].push(id);
                        }
                    }
                    SchedJob {
                        job: JobId(j as u32),
                        submit_seq: j as u64,
                        running,
                        pending_total: head.len() as u32,
                        head,
                        head_replica_less,
                        local_by_node,
                        banned_nodes,
                    }
                })
                .collect();
            SchedView {
                now: SimTime::from_secs(100),
                free_slots,
                jobs,
                complete: true,
            }
        })
    })
}

fn check_contract(view: &SchedView, assignments: &[super::Assignment]) {
    let mut free = view.free_slots.clone();
    let mut seen = HashSet::new();
    for a in assignments {
        assert!(
            free[a.node.0 as usize] > 0,
            "over-assigned node {:?}",
            a.node
        );
        free[a.node.0 as usize] -= 1;
        assert!(seen.insert((a.job, a.task)), "double assignment {a:?}");
        let job = view
            .jobs
            .iter()
            .find(|j| j.job == a.job)
            .expect("known job");
        let offered =
            job.head.contains(&a.task) || job.local_by_node.iter().any(|l| l.contains(&a.task));
        assert!(offered, "assigned a task that was never offered");
        assert!(
            !job.banned_on(a.node),
            "dispatched to a node the job blacklisted: {a:?}"
        );
        assert!(
            view.free_slots[a.node.0 as usize] > 0,
            "dispatched to a node with no free slots (dead): {a:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn fifo_respects_the_contract(view in arb_view(6, 5, 8)) {
        let assignments = FifoScheduler::new().assign(&view);
        check_contract(&view, &assignments);
    }

    #[test]
    fn fair_respects_the_contract(view in arb_view(6, 5, 8)) {
        let assignments = FairScheduler::paper_default().assign(&view);
        check_contract(&view, &assignments);
    }

    #[test]
    fn schedulers_are_deterministic(view in arb_view(6, 5, 8)) {
        prop_assert_eq!(FifoScheduler::new().assign(&view), FifoScheduler::new().assign(&view));
        prop_assert_eq!(
            FairScheduler::paper_default().assign(&view),
            FairScheduler::paper_default().assign(&view)
        );
    }

    /// FIFO is work-conserving: if any job offers a task every node can
    /// take (replica-less head), no slot stays free.
    #[test]
    fn fifo_fills_slots_when_tasks_are_unconstrained(free in prop::collection::vec(0u32..4, 1..6), tasks in 1usize..12) {
        let head: Vec<TaskId> = (0..tasks as u32).map(TaskId).collect();
        let view = SchedView {
            now: SimTime::ZERO,
            free_slots: free.clone(),
            jobs: vec![SchedJob {
                job: JobId(0),
                submit_seq: 0,
                running: 0,
                pending_total: tasks as u32,
                head,
                head_replica_less: vec![true; tasks],
                local_by_node: vec![Vec::new(); free.len()],
                banned_nodes: Vec::new(),
            }],
            complete: true,
        };
        let assignments = FifoScheduler::new().assign(&view);
        let total_free: u32 = free.iter().sum();
        prop_assert_eq!(assignments.len() as u32, total_free.min(tasks as u32));
        check_contract(&view, &assignments);
    }

    /// The Fair Scheduler never assigns a replicated task non-locally on
    /// the first offer (the delay must mature first).
    #[test]
    fn fair_first_offer_is_never_non_local(nodes in 2usize..6, tasks in 1usize..6) {
        // All tasks local only to node 0; free slots only elsewhere.
        let head: Vec<TaskId> = (0..tasks as u32).map(TaskId).collect();
        let mut local_by_node = vec![Vec::new(); nodes];
        local_by_node[0] = head.clone();
        let mut free = vec![1u32; nodes];
        free[0] = 0;
        let view = SchedView {
            now: SimTime::from_secs(5),
            free_slots: free,
            jobs: vec![SchedJob {
                job: JobId(0),
                submit_seq: 0,
                running: 0,
                pending_total: tasks as u32,
                head,
                head_replica_less: vec![false; tasks],
                local_by_node,
                banned_nodes: Vec::new(),
            }],
            complete: true,
        };
        let assignments = FairScheduler::paper_default().assign(&view);
        prop_assert!(assignments.is_empty(), "fresh fair scheduler must decline: {assignments:?}");
        let _ = NodeId(0);
    }

    /// A job banned everywhere gets nothing, no matter the offer — and
    /// other jobs still fill the slots (bans must not wedge a scheduler).
    #[test]
    fn banned_everywhere_job_is_never_dispatched(view in arb_view(6, 5, 8)) {
        let mut view = view;
        if let Some(first) = view.jobs.first_mut() {
            first.banned_nodes = vec![true; view.free_slots.len()];
        }
        let banned_job = view.jobs.first().map(|j| j.job);
        for assignments in [
            FifoScheduler::new().assign(&view),
            FairScheduler::paper_default().assign(&view),
        ] {
            check_contract(&view, &assignments);
            prop_assert!(
                assignments.iter().all(|a| Some(a.job) != banned_job),
                "banned-everywhere job was dispatched: {assignments:?}"
            );
        }
    }

    /// Dead nodes are presented as zero free slots; nothing may land there
    /// even when every other node is saturated.
    #[test]
    fn dead_nodes_receive_nothing(view in arb_view(6, 5, 8), dead in prop::collection::vec(any::<bool>(), 6)) {
        let mut view = view;
        for (n, free) in view.free_slots.iter_mut().enumerate() {
            if dead[n] {
                *free = 0;
            }
        }
        for assignments in [
            FifoScheduler::new().assign(&view),
            FairScheduler::paper_default().assign(&view),
        ] {
            check_contract(&view, &assignments);
            prop_assert!(
                assignments.iter().all(|a| !dead[a.node.0 as usize]),
                "dispatched to a dead node: {assignments:?}"
            );
        }
    }

    /// The speculation picker launches at most one backup per task: it
    /// never picks a task that is already speculating, already has two
    /// attempts in flight, or is still queued.
    #[test]
    fn speculation_never_exceeds_one_backup_per_task(
        cands in prop::collection::vec(
            (0u32..3, any::<bool>(), 0u64..1_000),
            0..24,
        ),
        now_s in 0u64..2_000,
        mean_ms in 1.0f64..100_000.0,
        completed in 0u32..20,
    ) {
        let cands: Vec<SpecCandidate> = cands
            .into_iter()
            .enumerate()
            .map(|(task, (attempts_in_flight, speculative_in_flight, started_s))| SpecCandidate {
                task: task as u32,
                attempts_in_flight,
                speculative_in_flight,
                started: SimTime::from_secs(started_s),
            })
            .collect();
        let cfg = SpeculationConfig::default();
        let picked = pick_speculative(&cands, SimTime::from_secs(now_s), mean_ms, completed, &cfg);
        if let Some(task) = picked {
            prop_assert!(completed >= cfg.min_completed);
            let c = cands.iter().find(|c| c.task == task).expect("picked from candidates");
            prop_assert_eq!(c.attempts_in_flight, 1, "backup beside exactly one running attempt");
            prop_assert!(!c.speculative_in_flight, "second backup for one task");
            // Re-asking after the launch (the task now has 2 attempts, one
            // speculative) must not pick the same task again.
            let after: Vec<SpecCandidate> = cands
                .iter()
                .map(|c| if c.task == task {
                    SpecCandidate { attempts_in_flight: 2, speculative_in_flight: true, ..*c }
                } else {
                    *c
                })
                .collect();
            prop_assert_ne!(
                pick_speculative(&after, SimTime::from_secs(now_s), mean_ms, completed, &cfg),
                Some(task)
            );
        }
    }

    /// The indexed FIFO scheduler is assignment-for-assignment identical
    /// to the linear implementation (the oracle) on any view.
    #[test]
    fn indexed_fifo_matches_linear_oracle(view in arb_view(6, 8, 8)) {
        let oracle = FifoScheduler::new().assign(&view);
        let indexed = IndexedFifoScheduler::new().assign(&view);
        prop_assert_eq!(indexed, oracle);
    }

    /// The indexed Fair scheduler matches the linear oracle across a
    /// *sequence* of views, so stateful delay-scheduling (wait clocks
    /// starting, maturing, and resetting) is pinned too.
    #[test]
    fn indexed_fair_matches_linear_oracle(views in prop::collection::vec(arb_view(5, 6, 6), 1..5)) {
        let mut oracle = FairScheduler::paper_default();
        let mut indexed = IndexedFairScheduler::paper_default();
        for (round, view) in views.into_iter().enumerate() {
            // Advance time so wait clocks from earlier rounds can mature.
            let mut view = view;
            view.now = SimTime::from_secs(100 + 20 * round as u64);
            prop_assert_eq!(indexed.assign(&view), oracle.assign(&view), "round {}", round);
        }
    }

    /// The indexed schedulers honour the same dispatch contract directly
    /// (belt and braces on top of the oracle equivalence).
    #[test]
    fn indexed_schedulers_respect_the_contract(view in arb_view(6, 5, 8)) {
        let a = IndexedFifoScheduler::new().assign(&view);
        check_contract(&view, &a);
        let a = IndexedFairScheduler::paper_default().assign(&view);
        check_contract(&view, &a);
    }
}
