//! The Fair Scheduler with delay scheduling ("developed by researchers at
//! U.C Berkeley and Facebook", paper Section V-F).
//!
//! Two behaviours distinguish it from FIFO:
//!
//! 1. **Fair sharing** — slots go to the job that is furthest below its
//!    fair share (fewest running tasks), not to the oldest job.
//! 2. **Delay scheduling** — a job offered a slot on a node where it has no
//!    local data *declines* and waits (up to the configured
//!    `locality_delay`) for a slot on a node that does hold its data.
//!
//! Delay scheduling trades slot occupancy for locality: the paper measured
//! 88% locality at only 18% occupancy (vs FIFO's 57% / 44%), with lower
//! overall throughput — the trend Figure 8 documents and our Figure 8
//! regenerator reproduces.

use std::collections::HashMap;

use incmr_dfs::NodeId;
use incmr_simkit::{SimDuration, SimTime};

use crate::job::JobId;

use super::{Assignment, Claims, SchedJob, SchedView, TaskScheduler, ViewPolicy};

/// The Fair Scheduler.
#[derive(Debug, Clone)]
pub struct FairScheduler {
    locality_delay: SimDuration,
    /// When each job first declined a non-local slot (cleared on any
    /// launch).
    waiting_since: HashMap<JobId, SimTime>,
}

impl FairScheduler {
    /// A fair scheduler that waits at most `locality_delay` for a local
    /// slot before accepting a non-local one.
    pub fn new(locality_delay: SimDuration) -> Self {
        FairScheduler {
            locality_delay,
            waiting_since: HashMap::new(),
        }
    }

    /// The configuration used in the paper-shaped experiments: 15 s — five
    /// heartbeats at the default cadence, within the range Zaharia et al.
    /// recommend (a fraction of the mean task length per locality level).
    pub fn paper_default() -> Self {
        FairScheduler::new(SimDuration::from_secs(15))
    }
}

impl TaskScheduler for FairScheduler {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn maps_per_heartbeat(&self) -> Option<u32> {
        // `mapred.fairscheduler.assignmultiple = false` in the 0.20 era.
        Some(1)
    }

    fn view_policy(&self) -> ViewPolicy {
        ViewPolicy::ShareOrder
    }

    // The index is also used to mutate `free` mid-loop; an iterator would
    // fight the borrow checker for no clarity gain.
    #[allow(clippy::needless_range_loop)]
    fn assign(&mut self, view: &SchedView) -> Vec<Assignment> {
        // Drop wait clocks for jobs no longer contending (completed, or
        // momentarily without pending work) — otherwise the map grows with
        // every job a long workload ever ran. Only a complete view can
        // prove absence; a share-order prefix omits well-fed jobs that are
        // still very much contending.
        if view.complete {
            self.waiting_since
                .retain(|j, _| view.jobs.iter().any(|sj| sj.job == *j));
        }
        let mut assignments = Vec::new();
        let mut free = view.free_slots.clone();
        let mut running: HashMap<JobId, u32> =
            view.jobs.iter().map(|j| (j.job, j.running)).collect();
        let mut claims = Claims::new();

        // One pass over the nodes; each slot is offered to jobs in fairness
        // order. Wait clocks only mature between scheduling points, so a
        // single pass reaches the fixpoint for this call.
        for node_idx in 0..free.len() {
            while free[node_idx] > 0 {
                let node = NodeId(node_idx as u16);
                // Jobs with unclaimed pending work, most-starved first
                // (ties broken by submission order for determinism).
                let mut order: Vec<&SchedJob> = view
                    .jobs
                    .iter()
                    .filter(|j| j.unclaimed(&claims) > 0)
                    .collect();
                if order.is_empty() {
                    return assignments;
                }
                order.sort_by_key(|j| (running[&j.job], j.submit_seq));

                let mut launched = false;
                for job in order {
                    // A blacklisted node is not a locality decline: skip
                    // the job here without touching its wait clock.
                    if job.banned_on(node) {
                        continue;
                    }
                    // Local launch when possible; non-local only for
                    // replica-less head tasks or once the wait clock has
                    // exceeded the configured delay.
                    let local = job.local_candidate(node, &claims);
                    let task = match local {
                        Some(t) => Some(t),
                        None => {
                            let head = job.head_candidate_flagged(&claims);
                            let waited = self
                                .waiting_since
                                .get(&job.job)
                                .map(|&since| view.now - since >= self.locality_delay)
                                .unwrap_or(false);
                            match head {
                                Some((t, replica_less)) if replica_less || waited => Some(t),
                                _ => None,
                            }
                        }
                    };
                    if let Some(task) = task {
                        claims.claim(job.job, task);
                        assignments.push(Assignment {
                            job: job.job,
                            task,
                            node,
                        });
                        free[node_idx] -= 1;
                        *running.get_mut(&job.job).expect("registered") += 1;
                        self.waiting_since.remove(&job.job);
                        launched = true;
                        break;
                    }
                    // Decline: start (or continue) the wait clock.
                    self.waiting_since.entry(job.job).or_insert(view.now);
                }
                if !launched {
                    // Every job declined this node; try the next one.
                    break;
                }
            }
        }
        assignments
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{sched_job, validate};
    use super::super::SchedView;
    use super::*;
    use crate::job::TaskId;

    fn view(now: SimTime, free: Vec<u32>, jobs: Vec<SchedJob>) -> SchedView {
        SchedView {
            now,
            free_slots: free,
            jobs,
            complete: true,
        }
    }

    #[test]
    fn starved_job_wins_over_older_job() {
        let v = view(
            SimTime::ZERO,
            vec![1],
            vec![
                sched_job(0, 0, 5, &[(0, &[0])], 1),
                sched_job(1, 1, 0, &[(0, &[0])], 1),
            ],
        );
        let a = FairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].job, JobId(1), "fewest running tasks wins the slot");
    }

    #[test]
    fn declines_non_local_slot_within_delay() {
        // The job's only task is local to node 1, but only node 0 has a slot.
        let v = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        let mut s = FairScheduler::paper_default();
        assert!(
            s.assign(&v).is_empty(),
            "delay scheduling leaves the slot idle at first"
        );
    }

    #[test]
    fn accepts_non_local_after_delay_expires() {
        let mut s = FairScheduler::paper_default();
        let v0 = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        assert!(s.assign(&v0).is_empty());
        // 16 seconds later the wait exceeds the 15 s delay.
        let v1 = view(
            SimTime::from_secs(16),
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        let a = s.assign(&v1);
        validate(&v1, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].node, NodeId(0));
    }

    #[test]
    fn local_launch_resets_the_wait_clock() {
        let mut s = FairScheduler::paper_default();
        // Decline at t=0.
        let v0 = view(
            SimTime::ZERO,
            vec![1, 0],
            vec![sched_job(0, 0, 0, &[(0, &[1])], 2)],
        );
        assert!(s.assign(&v0).is_empty());
        // At t=3 a local slot appears; the job launches locally.
        let v1 = view(
            SimTime::from_secs(3),
            vec![0, 1],
            vec![sched_job(0, 0, 0, &[(0, &[1]), (1, &[1])], 2)],
        );
        let a = s.assign(&v1);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task, TaskId(0));
        // A new decline at t=4 restarts the clock: at t=8 only 4 s have
        // passed since the reset, so still declined.
        let v2 = view(
            SimTime::from_secs(4),
            vec![1, 0],
            vec![sched_job(0, 0, 1, &[(1, &[1])], 2)],
        );
        assert!(s.assign(&v2).is_empty());
        let v3 = view(
            SimTime::from_secs(8),
            vec![1, 0],
            vec![sched_job(0, 0, 1, &[(1, &[1])], 2)],
        );
        assert!(
            s.assign(&v3).is_empty(),
            "clock was reset by the local launch"
        );
    }

    #[test]
    fn replica_less_tasks_launch_anywhere_immediately() {
        let v = view(
            SimTime::ZERO,
            vec![1],
            vec![sched_job(0, 0, 0, &[(0, &[])], 1)],
        );
        let a = FairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn local_task_preferred_over_head_of_queue() {
        let v = view(
            SimTime::ZERO,
            vec![0, 1],
            vec![sched_job(0, 0, 0, &[(0, &[0]), (1, &[1])], 2)],
        );
        let a = FairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].task, TaskId(1), "the node-1-local task runs on node 1");
    }

    #[test]
    fn blacklisted_node_is_skipped_without_starting_the_wait_clock() {
        let mut s = FairScheduler::paper_default();
        let mut banned = sched_job(0, 0, 0, &[(0, &[0])], 2);
        banned.banned_nodes = vec![true, false];
        let v0 = view(SimTime::ZERO, vec![1, 0], vec![banned.clone()]);
        assert!(s.assign(&v0).is_empty(), "job may not run on node 0");
        // Much later, node 0 is still off-limits: the skip never matured a
        // wait clock into a non-local launch there.
        let v1 = view(SimTime::from_secs(100), vec![1, 0], vec![banned.clone()]);
        assert!(s.assign(&v1).is_empty());
        // An unbanned node with the job's data serves it immediately.
        let mut allowed = sched_job(0, 0, 0, &[(0, &[1])], 2);
        allowed.banned_nodes = vec![true, false];
        let v2 = view(SimTime::from_secs(100), vec![0, 1], vec![allowed]);
        let a = s.assign(&v2);
        validate(&v2, &a);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].node, NodeId(1));
    }

    #[test]
    fn spreads_slots_fairly_across_jobs() {
        let tasks: Vec<(u32, &[u16])> = (0..4).map(|i| (i, &[0u16][..])).collect();
        let v = view(
            SimTime::ZERO,
            vec![4],
            vec![sched_job(0, 0, 0, &tasks, 1), sched_job(1, 1, 0, &tasks, 1)],
        );
        let a = FairScheduler::paper_default().assign(&v);
        validate(&v, &a);
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().filter(|x| x.job == JobId(0)).count(), 2);
        assert_eq!(a.iter().filter(|x| x.job == JobId(1)).count(), 2);
    }
}
