//! The observability plane: structured trace export, latency histograms,
//! and the provider-decision audit log.
//!
//! Everything in this module is derived from **simulated** time and
//! deterministic integer counters, so all of its output — JSONL traces,
//! histogram quantiles, audit lines, swimlane charts — is byte-identical
//! across data-plane thread counts (see `crate::parallel`) and across
//! runs.
//!
//! * [`encode_event`] / [`parse_event`] — a stable, hand-rolled JSONL
//!   codec for [`TraceEvent`] (no serde; the build is offline). Every
//!   [`TraceKind`] is encoded by an exhaustive `match`, so adding a
//!   variant without an encoding is a compile error.
//! * [`TraceSink`] — where the runtime streams events: [`MemorySink`]
//!   (the classic `Vec<TraceEvent>` behaviour) or [`JsonlSink`] (encodes
//!   eagerly to JSONL text).
//! * [`MetricsRegistry`] — simulated-time latency histograms
//!   ([`LogHistogram`]) for the six families DESIGN.md §10 documents,
//!   mergeable across jobs.
//! * [`AuditRecord`] — one entry per `GrowthDriver` consultation: the
//!   inputs the driver saw (`JobProgress`, `ClusterStatus`, grab limit),
//!   the directive it returned, and every guard-rail rewrite (clamp,
//!   dedup, retry) applied to it. A job's growth history is fully
//!   reconstructable from its audit lines.
//! * [`render_swimlanes`] — a per-node/per-slot occupancy chart from an
//!   exported trace, used by `incmr-experiments` to explain runs.

use std::collections::BTreeMap;
use std::fmt;

use incmr_dfs::NodeId;
use incmr_simkit::stats::LogHistogram;
use incmr_simkit::SimTime;

use crate::cluster::ClusterStatus;
use crate::job::{JobId, JobProgress, ProviderStage, TaskId};
use crate::trace::{TraceEvent, TraceKind};

// ---------------------------------------------------------------------------
// JSONL codec
// ---------------------------------------------------------------------------

/// The stable wire name of a [`TraceKind`] variant.
///
/// The exhaustive `match` (no wildcard arm) is deliberate: a future
/// variant without a wire name fails compilation here, which is the
/// build-time guard the round-trip test suite relies on.
pub fn kind_name(kind: &TraceKind) -> &'static str {
    match kind {
        TraceKind::JobSubmitted { .. } => "JobSubmitted",
        TraceKind::InputAdded { .. } => "InputAdded",
        TraceKind::EndOfInput { .. } => "EndOfInput",
        TraceKind::MapStarted { .. } => "MapStarted",
        TraceKind::MapFinished { .. } => "MapFinished",
        TraceKind::MapFailed { .. } => "MapFailed",
        TraceKind::ShuffleReady { .. } => "ShuffleReady",
        TraceKind::ReduceStarted { .. } => "ReduceStarted",
        TraceKind::ReduceFinished { .. } => "ReduceFinished",
        TraceKind::JobCompleted { .. } => "JobCompleted",
        TraceKind::ReduceFailed { .. } => "ReduceFailed",
        TraceKind::NodeLost { .. } => "NodeLost",
        TraceKind::NodeRejoined { .. } => "NodeRejoined",
        TraceKind::SpeculativeLaunch { .. } => "SpeculativeLaunch",
        TraceKind::AttemptKilled { .. } => "AttemptKilled",
        TraceKind::NodeBlacklisted { .. } => "NodeBlacklisted",
        TraceKind::ProviderFault { .. } => "ProviderFault",
        TraceKind::GrabLimitClamped { .. } => "GrabLimitClamped",
        TraceKind::DuplicateInputDropped { .. } => "DuplicateInputDropped",
        TraceKind::JobWedged { .. } => "JobWedged",
        TraceKind::DeadlineExceeded { .. } => "DeadlineExceeded",
        TraceKind::PartialSample { .. } => "PartialSample",
        TraceKind::QueryAdmitted { .. } => "QueryAdmitted",
        TraceKind::QueryRejected { .. } => "QueryRejected",
        TraceKind::QuotaDeferred { .. } => "QuotaDeferred",
        TraceKind::SplitReused { .. } => "SplitReused",
        TraceKind::SplitDirty { .. } => "SplitDirty",
        TraceKind::InputArrived { .. } => "InputArrived",
        TraceKind::ReplicaLost { .. } => "ReplicaLost",
        TraceKind::ReplicaRestored { .. } => "ReplicaRestored",
        TraceKind::ReadFailover { .. } => "ReadFailover",
        TraceKind::InputLost { .. } => "InputLost",
        TraceKind::ErrorBoundProbe { .. } => "ErrorBoundProbe",
        TraceKind::BoundMet { .. } => "BoundMet",
    }
}

/// Encode one event as a single JSON object (one JSONL line, no trailing
/// newline). Key order is fixed: `t`, `kind`, then the payload fields in
/// declaration order, so encodings are byte-stable.
pub fn encode_event(event: &TraceEvent) -> String {
    let mut s = format!(
        "{{\"t\":{},\"kind\":\"{}\"",
        event.time.as_millis(),
        kind_name(&event.kind)
    );
    {
        let mut field = |k: &str, v: u64| {
            s.push_str(&format!(",\"{k}\":{v}"));
        };
        // Exhaustive over every TraceKind: adding a variant without an
        // encoding is a compile error (the round-trip suite's build guard).
        match &event.kind {
            TraceKind::JobSubmitted { job } => field("job", job.0 as u64),
            TraceKind::InputAdded { job, splits } => {
                field("job", job.0 as u64);
                field("splits", *splits as u64);
            }
            TraceKind::EndOfInput { job } => field("job", job.0 as u64),
            TraceKind::MapStarted {
                job,
                task,
                node,
                local,
            } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
                field("node", node.0 as u64);
                s.push_str(&format!(",\"local\":{local}"));
            }
            TraceKind::MapFinished { job, task } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
            }
            TraceKind::MapFailed { job, task, attempt } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
                field("attempt", *attempt as u64);
            }
            TraceKind::ShuffleReady {
                job,
                partitions,
                combiner_in,
                combiner_out,
                max_partition_bytes,
                min_partition_bytes,
            } => {
                field("job", job.0 as u64);
                field("partitions", *partitions as u64);
                field("combiner_in", *combiner_in);
                field("combiner_out", *combiner_out);
                field("max_partition_bytes", *max_partition_bytes);
                field("min_partition_bytes", *min_partition_bytes);
            }
            TraceKind::ReduceStarted { job, reduce, node } => {
                field("job", job.0 as u64);
                field("reduce", *reduce as u64);
                field("node", node.0 as u64);
            }
            TraceKind::ReduceFinished { job, reduce } => {
                field("job", job.0 as u64);
                field("reduce", *reduce as u64);
            }
            TraceKind::JobCompleted { job, failed } => {
                field("job", job.0 as u64);
                s.push_str(&format!(",\"failed\":{failed}"));
            }
            TraceKind::ReduceFailed {
                job,
                reduce,
                attempt,
            } => {
                field("job", job.0 as u64);
                field("reduce", *reduce as u64);
                field("attempt", *attempt as u64);
            }
            TraceKind::NodeLost { node } => field("node", node.0 as u64),
            TraceKind::NodeRejoined { node } => field("node", node.0 as u64),
            TraceKind::SpeculativeLaunch { job, task, node } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
                field("node", node.0 as u64);
            }
            TraceKind::AttemptKilled { job, task, node } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
                field("node", node.0 as u64);
            }
            TraceKind::NodeBlacklisted { job, node } => {
                field("job", job.0 as u64);
                field("node", node.0 as u64);
            }
            TraceKind::ProviderFault { job, fatal } => {
                field("job", job.0 as u64);
                s.push_str(&format!(",\"fatal\":{fatal}"));
            }
            TraceKind::GrabLimitClamped {
                job,
                requested,
                granted,
            } => {
                field("job", job.0 as u64);
                field("requested", *requested as u64);
                field("granted", *granted as u64);
            }
            TraceKind::DuplicateInputDropped { job, splits } => {
                field("job", job.0 as u64);
                field("splits", *splits as u64);
            }
            TraceKind::JobWedged {
                job,
                idle_evaluations,
            } => {
                field("job", job.0 as u64);
                field("idle_evaluations", *idle_evaluations as u64);
            }
            TraceKind::DeadlineExceeded { job, graceful } => {
                field("job", job.0 as u64);
                s.push_str(&format!(",\"graceful\":{graceful}"));
            }
            TraceKind::PartialSample {
                job,
                found,
                requested,
            } => {
                field("job", job.0 as u64);
                field("found", *found);
                field("requested", *requested);
            }
            TraceKind::QueryAdmitted { tenant, job } => {
                field("tenant", *tenant as u64);
                field("job", job.0 as u64);
            }
            TraceKind::QueryRejected { tenant, queued } => {
                field("tenant", *tenant as u64);
                field("queued", *queued as u64);
            }
            TraceKind::QuotaDeferred { tenant, depth } => {
                field("tenant", *tenant as u64);
                field("depth", *depth as u64);
            }
            TraceKind::SplitReused { job, task } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
            }
            TraceKind::SplitDirty { job, task } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
            }
            TraceKind::InputArrived { splits } => {
                field("splits", *splits as u64);
            }
            TraceKind::ReplicaLost { block, node } => {
                field("block", block.0 as u64);
                field("node", node.0 as u64);
            }
            TraceKind::ReplicaRestored { block, node } => {
                field("block", block.0 as u64);
                field("node", node.0 as u64);
            }
            TraceKind::ReadFailover {
                job,
                task,
                from,
                to,
            } => {
                field("job", job.0 as u64);
                field("task", task.0 as u64);
                field("from", from.0 as u64);
                field("to", to.0 as u64);
            }
            TraceKind::InputLost {
                job,
                blocks,
                graceful,
            } => {
                field("job", job.0 as u64);
                field("blocks", *blocks as u64);
                s.push_str(&format!(",\"graceful\":{graceful}"));
            }
            TraceKind::ErrorBoundProbe {
                job,
                completed,
                groups,
                worst_ppm,
                bound_met,
            } => {
                field("job", job.0 as u64);
                field("completed", *completed as u64);
                field("groups", *groups as u64);
                field("worst_ppm", *worst_ppm);
                s.push_str(&format!(",\"bound_met\":{bound_met}"));
            }
            TraceKind::BoundMet {
                job,
                completed,
                total,
            } => {
                field("job", job.0 as u64);
                field("completed", *completed as u64);
                field("total", *total as u64);
            }
        }
    }
    s.push('}');
    s
}

/// Encode a whole trace as JSONL (one event per line, trailing newline).
pub fn encode_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&encode_event(e));
        out.push('\n');
    }
    out
}

/// Why a JSONL line failed to parse back into a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceParseError {
    /// The line is not a well-formed flat JSON object.
    Malformed(String),
    /// The `kind` field names no known [`TraceKind`].
    UnknownKind(String),
    /// A payload field required by the kind is absent or mistyped.
    MissingField {
        /// The event kind being decoded.
        kind: String,
        /// The absent field.
        field: &'static str,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::Malformed(m) => write!(f, "malformed trace line: {m}"),
            TraceParseError::UnknownKind(k) => write!(f, "unknown trace kind {k:?}"),
            TraceParseError::MissingField { kind, field } => {
                write!(f, "{kind} event missing field {field:?}")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Num(u64),
    Bool(bool),
    Str(String),
}

/// Minimal parser for the flat JSON objects [`encode_event`] emits:
/// string keys mapping to unsigned integers, booleans, or plain strings.
fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, TraceParseError> {
    let bad = |m: &str| TraceParseError::Malformed(format!("{m} in {line:?}"));
    let mut chars = line.trim().char_indices().peekable();
    let s = line.trim();
    let mut fields = Vec::new();
    let expect =
        |c: char, chars: &mut std::iter::Peekable<std::str::CharIndices<'_>>| match chars.next() {
            Some((_, got)) if got == c => Ok(()),
            _ => Err(bad(&format!("expected {c:?}"))),
        };
    expect('{', &mut chars)?;
    loop {
        match chars.peek() {
            Some((_, '}')) => {
                chars.next();
                break;
            }
            Some((_, ',')) if !fields.is_empty() => {
                chars.next();
            }
            Some(_) if fields.is_empty() => {}
            _ => return Err(bad("expected ',' or '}'")),
        }
        // Key.
        expect('"', &mut chars)?;
        let start = chars.peek().ok_or_else(|| bad("truncated key"))?.0;
        let mut end = start;
        for (i, c) in chars.by_ref() {
            if c == '"' {
                end = i;
                break;
            }
        }
        let key = s[start..end].to_string();
        expect(':', &mut chars)?;
        // Value.
        let value = match chars.peek() {
            Some((_, '"')) => {
                chars.next();
                let start = chars.peek().ok_or_else(|| bad("truncated string"))?.0;
                let mut end = start;
                for (i, c) in chars.by_ref() {
                    if c == '"' {
                        end = i;
                        break;
                    }
                }
                JsonValue::Str(s[start..end].to_string())
            }
            Some((_, 't')) => {
                for _ in 0..4 {
                    chars.next();
                }
                JsonValue::Bool(true)
            }
            Some((_, 'f')) => {
                for _ in 0..5 {
                    chars.next();
                }
                JsonValue::Bool(false)
            }
            Some((_, c)) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some((_, c)) = chars.peek() {
                    let Some(d) = c.to_digit(10) else { break };
                    n = n
                        .checked_mul(10)
                        .and_then(|n| n.checked_add(d as u64))
                        .ok_or_else(|| bad("number overflows u64"))?;
                    chars.next();
                }
                JsonValue::Num(n)
            }
            _ => return Err(bad("unsupported value")),
        };
        fields.push((key, value));
    }
    if chars.next().is_some() {
        return Err(bad("trailing garbage"));
    }
    Ok(fields)
}

struct FieldReader<'a> {
    kind: &'a str,
    fields: &'a [(String, JsonValue)],
}

impl<'a> FieldReader<'a> {
    fn missing(&self, field: &'static str) -> TraceParseError {
        TraceParseError::MissingField {
            kind: self.kind.to_string(),
            field,
        }
    }

    fn num(&self, field: &'static str) -> Result<u64, TraceParseError> {
        match self.fields.iter().find(|(k, _)| k == field) {
            Some((_, JsonValue::Num(n))) => Ok(*n),
            _ => Err(self.missing(field)),
        }
    }

    fn boolean(&self, field: &'static str) -> Result<bool, TraceParseError> {
        match self.fields.iter().find(|(k, _)| k == field) {
            Some((_, JsonValue::Bool(b))) => Ok(*b),
            _ => Err(self.missing(field)),
        }
    }

    fn job(&self) -> Result<JobId, TraceParseError> {
        Ok(JobId(self.num("job")? as u32))
    }

    fn task(&self) -> Result<TaskId, TraceParseError> {
        Ok(TaskId(self.num("task")? as u32))
    }

    fn node(&self) -> Result<NodeId, TraceParseError> {
        Ok(NodeId(self.num("node")? as u16))
    }
}

/// Parse one JSONL line produced by [`encode_event`] back into the event.
pub fn parse_event(line: &str) -> Result<TraceEvent, TraceParseError> {
    let fields = parse_flat_object(line)?;
    let kind_field = match fields.iter().find(|(k, _)| k == "kind") {
        Some((_, JsonValue::Str(k))) => k.clone(),
        _ => {
            return Err(TraceParseError::Malformed(format!(
                "no \"kind\" field in {line:?}"
            )))
        }
    };
    let r = FieldReader {
        kind: &kind_field,
        fields: &fields,
    };
    let time = SimTime::from_millis(
        r.num("t")
            .map_err(|_| TraceParseError::Malformed(format!("no \"t\" field in {line:?}")))?,
    );
    let kind = match kind_field.as_str() {
        "JobSubmitted" => TraceKind::JobSubmitted { job: r.job()? },
        "InputAdded" => TraceKind::InputAdded {
            job: r.job()?,
            splits: r.num("splits")? as u32,
        },
        "EndOfInput" => TraceKind::EndOfInput { job: r.job()? },
        "MapStarted" => TraceKind::MapStarted {
            job: r.job()?,
            task: r.task()?,
            node: r.node()?,
            local: r.boolean("local")?,
        },
        "MapFinished" => TraceKind::MapFinished {
            job: r.job()?,
            task: r.task()?,
        },
        "MapFailed" => TraceKind::MapFailed {
            job: r.job()?,
            task: r.task()?,
            attempt: r.num("attempt")? as u32,
        },
        "ShuffleReady" => TraceKind::ShuffleReady {
            job: r.job()?,
            partitions: r.num("partitions")? as u32,
            combiner_in: r.num("combiner_in")?,
            combiner_out: r.num("combiner_out")?,
            max_partition_bytes: r.num("max_partition_bytes")?,
            min_partition_bytes: r.num("min_partition_bytes")?,
        },
        "ReduceStarted" => TraceKind::ReduceStarted {
            job: r.job()?,
            reduce: r.num("reduce")? as u32,
            node: r.node()?,
        },
        "ReduceFinished" => TraceKind::ReduceFinished {
            job: r.job()?,
            reduce: r.num("reduce")? as u32,
        },
        "JobCompleted" => TraceKind::JobCompleted {
            job: r.job()?,
            failed: r.boolean("failed")?,
        },
        "ReduceFailed" => TraceKind::ReduceFailed {
            job: r.job()?,
            reduce: r.num("reduce")? as u32,
            attempt: r.num("attempt")? as u32,
        },
        "NodeLost" => TraceKind::NodeLost { node: r.node()? },
        "NodeRejoined" => TraceKind::NodeRejoined { node: r.node()? },
        "SpeculativeLaunch" => TraceKind::SpeculativeLaunch {
            job: r.job()?,
            task: r.task()?,
            node: r.node()?,
        },
        "AttemptKilled" => TraceKind::AttemptKilled {
            job: r.job()?,
            task: r.task()?,
            node: r.node()?,
        },
        "NodeBlacklisted" => TraceKind::NodeBlacklisted {
            job: r.job()?,
            node: r.node()?,
        },
        "ProviderFault" => TraceKind::ProviderFault {
            job: r.job()?,
            fatal: r.boolean("fatal")?,
        },
        "GrabLimitClamped" => TraceKind::GrabLimitClamped {
            job: r.job()?,
            requested: r.num("requested")? as u32,
            granted: r.num("granted")? as u32,
        },
        "DuplicateInputDropped" => TraceKind::DuplicateInputDropped {
            job: r.job()?,
            splits: r.num("splits")? as u32,
        },
        "JobWedged" => TraceKind::JobWedged {
            job: r.job()?,
            idle_evaluations: r.num("idle_evaluations")? as u32,
        },
        "DeadlineExceeded" => TraceKind::DeadlineExceeded {
            job: r.job()?,
            graceful: r.boolean("graceful")?,
        },
        "PartialSample" => TraceKind::PartialSample {
            job: r.job()?,
            found: r.num("found")?,
            requested: r.num("requested")?,
        },
        "QueryAdmitted" => TraceKind::QueryAdmitted {
            tenant: r.num("tenant")? as u32,
            job: r.job()?,
        },
        "QueryRejected" => TraceKind::QueryRejected {
            tenant: r.num("tenant")? as u32,
            queued: r.num("queued")? as u32,
        },
        "QuotaDeferred" => TraceKind::QuotaDeferred {
            tenant: r.num("tenant")? as u32,
            depth: r.num("depth")? as u32,
        },
        "SplitReused" => TraceKind::SplitReused {
            job: r.job()?,
            task: r.task()?,
        },
        "SplitDirty" => TraceKind::SplitDirty {
            job: r.job()?,
            task: r.task()?,
        },
        "InputArrived" => TraceKind::InputArrived {
            splits: r.num("splits")? as u32,
        },
        "ReplicaLost" => TraceKind::ReplicaLost {
            block: incmr_dfs::BlockId(r.num("block")? as u32),
            node: r.node()?,
        },
        "ReplicaRestored" => TraceKind::ReplicaRestored {
            block: incmr_dfs::BlockId(r.num("block")? as u32),
            node: r.node()?,
        },
        "ReadFailover" => TraceKind::ReadFailover {
            job: r.job()?,
            task: r.task()?,
            from: incmr_dfs::DiskId(r.num("from")? as u32),
            to: incmr_dfs::DiskId(r.num("to")? as u32),
        },
        "InputLost" => TraceKind::InputLost {
            job: r.job()?,
            blocks: r.num("blocks")? as u32,
            graceful: r.boolean("graceful")?,
        },
        "ErrorBoundProbe" => TraceKind::ErrorBoundProbe {
            job: r.job()?,
            completed: r.num("completed")? as u32,
            groups: r.num("groups")? as u32,
            worst_ppm: r.num("worst_ppm")?,
            bound_met: r.boolean("bound_met")?,
        },
        "BoundMet" => TraceKind::BoundMet {
            job: r.job()?,
            completed: r.num("completed")? as u32,
            total: r.num("total")? as u32,
        },
        other => return Err(TraceParseError::UnknownKind(other.to_string())),
    };
    Ok(TraceEvent { time, kind })
}

/// Parse a whole JSONL document (blank lines are skipped).
pub fn parse_trace(jsonl: &str) -> Result<Vec<TraceEvent>, TraceParseError> {
    jsonl
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_event)
        .collect()
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

/// Where the runtime streams trace events.
///
/// Sinks observe exactly the event stream `MrRuntime::take_trace` would
/// collect, in the same deterministic order.
pub trait TraceSink: Send {
    /// Observe one event.
    fn record(&mut self, event: &TraceEvent);
    /// Drain everything observed so far as JSONL text (sinks that buffer
    /// decoded events encode them here).
    fn drain_jsonl(&mut self) -> String;
}

/// The classic in-memory sink: buffers decoded [`TraceEvent`]s.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Vec<TraceEvent>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Events observed so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Take the buffered events, leaving the sink empty.
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: &TraceEvent) {
        self.events.push(event.clone());
    }

    fn drain_jsonl(&mut self) -> String {
        encode_trace(&self.take_events())
    }
}

/// Encodes every event to JSONL eagerly; holds only text.
#[derive(Debug, Default)]
pub struct JsonlSink {
    out: String,
}

impl JsonlSink {
    /// An empty sink.
    pub fn new() -> Self {
        JsonlSink::default()
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, event: &TraceEvent) {
        self.out.push_str(&encode_event(event));
        self.out.push('\n');
    }

    fn drain_jsonl(&mut self) -> String {
        std::mem::take(&mut self.out)
    }
}

// ---------------------------------------------------------------------------
// Latency histograms
// ---------------------------------------------------------------------------

/// The fixed set of latency families the runtime records, all in
/// simulated milliseconds (see DESIGN.md §10 for exact semantics):
///
/// | family | one observation per | measures |
/// |--------|--------------------|----------|
/// | `map_attempt_ms` | committed map attempt | dispatch → completion |
/// | `shuffle_merge_ms` | job reaching shuffle-ready | first merged map output → shuffle closed |
/// | `reduce_ms` | committed reduce attempt | reduce start → commit |
/// | `provider_eval_interval_ms` | driver evaluation after the first | gap between consecutive evaluations |
/// | `queue_wait_ms[scheduler]` | non-speculative map dispatch | (re)queue → dispatch, keyed by scheduler |
/// | `split_wait_ms` | split's first dispatch | split added → first attempt dispatched |
/// | `agg_probe_ms` | error-bound probe on an estimating job | gap since the previous probe (or submission) |
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    map_attempt_ms: LogHistogram,
    shuffle_merge_ms: LogHistogram,
    reduce_ms: LogHistogram,
    provider_eval_interval_ms: LogHistogram,
    queue_wait_ms: BTreeMap<String, LogHistogram>,
    split_wait_ms: LogHistogram,
    agg_probe_ms: LogHistogram,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Record a committed map attempt's latency.
    pub fn record_map_attempt(&mut self, ms: u64) {
        self.map_attempt_ms.record(ms);
    }

    /// Record a job's shuffle-merge span (first merge → shuffle ready).
    pub fn record_shuffle_merge(&mut self, ms: u64) {
        self.shuffle_merge_ms.record(ms);
    }

    /// Record a committed reduce attempt's latency.
    pub fn record_reduce(&mut self, ms: u64) {
        self.reduce_ms.record(ms);
    }

    /// Record the gap between two consecutive driver evaluations.
    pub fn record_provider_eval_interval(&mut self, ms: u64) {
        self.provider_eval_interval_ms.record(ms);
    }

    /// Record a map task's queue wait under the named scheduler.
    pub fn record_queue_wait(&mut self, scheduler: &str, ms: u64) {
        self.queue_wait_ms
            .entry(scheduler.to_string())
            .or_default()
            .record(ms);
    }

    /// Record a split's wait from being added to its first dispatch.
    pub fn record_split_wait(&mut self, ms: u64) {
        self.split_wait_ms.record(ms);
    }

    /// Record the gap an estimating job's error-bound probe observed since
    /// its previous probe (or since submission, for the first one).
    pub fn record_agg_probe(&mut self, ms: u64) {
        self.agg_probe_ms.record(ms);
    }

    /// Committed-map-attempt latencies.
    pub fn map_attempt(&self) -> &LogHistogram {
        &self.map_attempt_ms
    }

    /// Shuffle-merge spans.
    pub fn shuffle_merge(&self) -> &LogHistogram {
        &self.shuffle_merge_ms
    }

    /// Committed-reduce latencies.
    pub fn reduce(&self) -> &LogHistogram {
        &self.reduce_ms
    }

    /// Driver evaluation intervals.
    pub fn provider_eval_interval(&self) -> &LogHistogram {
        &self.provider_eval_interval_ms
    }

    /// Queue waits for one scheduler (`None` if it never dispatched).
    pub fn queue_wait(&self, scheduler: &str) -> Option<&LogHistogram> {
        self.queue_wait_ms.get(scheduler)
    }

    /// All queue waits merged across schedulers.
    pub fn queue_wait_total(&self) -> LogHistogram {
        let mut h = LogHistogram::new();
        for q in self.queue_wait_ms.values() {
            h.merge(q);
        }
        h
    }

    /// Split wait-to-first-dispatch latencies.
    pub fn split_wait(&self) -> &LogHistogram {
        &self.split_wait_ms
    }

    /// Error-bound probe intervals (one observation per probe).
    pub fn agg_probe(&self) -> &LogHistogram {
        &self.agg_probe_ms
    }

    /// Every family with its stable display name, queue-wait families
    /// keyed as `queue_wait_ms[<scheduler>]`.
    pub fn families(&self) -> Vec<(String, &LogHistogram)> {
        let mut out = vec![
            ("map_attempt_ms".to_string(), &self.map_attempt_ms),
            ("shuffle_merge_ms".to_string(), &self.shuffle_merge_ms),
            ("reduce_ms".to_string(), &self.reduce_ms),
            (
                "provider_eval_interval_ms".to_string(),
                &self.provider_eval_interval_ms,
            ),
        ];
        for (sched, h) in &self.queue_wait_ms {
            out.push((format!("queue_wait_ms[{sched}]"), h));
        }
        out.push(("split_wait_ms".to_string(), &self.split_wait_ms));
        out.push(("agg_probe_ms".to_string(), &self.agg_probe_ms));
        out
    }

    /// True when no family holds any observation.
    pub fn is_empty(&self) -> bool {
        self.families().iter().all(|(_, h)| h.is_empty())
    }

    /// Fold another registry into this one (exact: fixed bucket layout).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        self.map_attempt_ms.merge(&other.map_attempt_ms);
        self.shuffle_merge_ms.merge(&other.shuffle_merge_ms);
        self.reduce_ms.merge(&other.reduce_ms);
        self.provider_eval_interval_ms
            .merge(&other.provider_eval_interval_ms);
        for (sched, h) in &other.queue_wait_ms {
            self.queue_wait_ms
                .entry(sched.clone())
                .or_default()
                .merge(h);
        }
        self.split_wait_ms.merge(&other.split_wait_ms);
        self.agg_probe_ms.merge(&other.agg_probe_ms);
    }

    /// A stable plain-text snapshot: one line per family with count,
    /// quantiles, max, and sum, followed by its non-empty buckets.
    pub fn render(&self) -> String {
        let mut out = String::from("latency histograms (simulated ms)\n");
        for (name, h) in self.families() {
            if h.is_empty() {
                out.push_str(&format!("  {name}: count=0\n"));
                continue;
            }
            out.push_str(&format!(
                "  {name}: count={} p50={} p95={} p99={} max={} sum={}\n",
                h.count(),
                h.p50().unwrap(),
                h.p95().unwrap(),
                h.p99().unwrap(),
                h.max(),
                h.sum()
            ));
            for (i, &c) in h.buckets().iter().enumerate() {
                if c > 0 {
                    let (lo, hi) = LogHistogram::bucket_range(i);
                    out.push_str(&format!("    [{lo}..{hi}] {c}\n"));
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Provider-decision audit log
// ---------------------------------------------------------------------------

/// The directive a driver consultation produced, as audited — `AddInput`
/// keeps only the *requested* split count (the splits themselves are in
/// the trace); provider faults appear as their own directive so a job's
/// growth history stays gap-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditDirective {
    /// The driver asked for more splits.
    AddInput {
        /// Splits the directive named, before any guard-rail rewrite.
        requested: u32,
    },
    /// The driver declared the input complete.
    EndOfInput,
    /// The driver chose to wait.
    Wait,
    /// The consultation faulted (panic or invalid directive).
    Fault {
        /// True if the fault failed the job; false if a retry absorbed it.
        fatal: bool,
    },
}

impl fmt::Display for AuditDirective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditDirective::AddInput { .. } => write!(f, "AddInput"),
            AuditDirective::EndOfInput => write!(f, "EndOfInput"),
            AuditDirective::Wait => write!(f, "Wait"),
            AuditDirective::Fault { .. } => write!(f, "Fault"),
        }
    }
}

/// One audited `GrowthDriver` consultation: everything the driver saw and
/// everything that happened to its answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AuditRecord {
    /// Simulated time of the consultation.
    pub time: SimTime,
    /// The job whose driver was consulted.
    pub job: JobId,
    /// Which hook ran (`initial_input` or `evaluate`).
    pub stage: ProviderStage,
    /// The job progress snapshot the driver received.
    pub progress: JobProgress,
    /// The cluster load snapshot the driver received.
    pub cluster: ClusterStatus,
    /// The grab limit in force (`u64::MAX` = unlimited).
    pub grab_limit: u64,
    /// What the driver answered.
    pub directive: AuditDirective,
    /// Splits actually admitted after guard-rail rewrites.
    pub granted: u32,
    /// True if the grab-limit clamp truncated the directive.
    pub clamped: bool,
    /// Duplicate split entries the dedup guard dropped.
    pub duplicates_dropped: u32,
    /// True if a provider fault was absorbed by the retry budget.
    pub retried: bool,
}

/// Splits admitted across all audited consultations of `job` — by
/// construction this equals the job's final `JobProgress::splits_added`,
/// which is what makes the audit log a full reconstruction of the job's
/// growth history.
pub fn audited_splits_added(records: &[AuditRecord], job: JobId) -> u32 {
    records
        .iter()
        .filter(|r| r.job == job)
        .map(|r| r.granted)
        .sum()
}

/// Render audit records as stable one-line-per-decision text. Every field
/// appears as `key=value` on every line, so format drift is caught by the
/// golden coverage guard.
pub fn render_audit(records: &[AuditRecord]) -> String {
    let mut out = String::from("provider-decision audit log\n");
    for r in records {
        let grab = if r.grab_limit == u64::MAX {
            "unlimited".to_string()
        } else {
            r.grab_limit.to_string()
        };
        let requested = match r.directive {
            AuditDirective::AddInput { requested } => requested,
            _ => 0,
        };
        out.push_str(&format!(
            "  {} {} stage={} added={} completed={} running={} pending={} \
             records={} matches={} slots={} busy={} jobs={} queued={} \
             grab_limit={} directive={} requested={} granted={} clamped={} \
             dups={} retried={}\n",
            r.time,
            r.job,
            r.stage,
            r.progress.splits_added,
            r.progress.splits_completed,
            r.progress.splits_running,
            r.progress.splits_pending,
            r.progress.records_processed,
            r.progress.map_output_records,
            r.cluster.total_map_slots,
            r.cluster.occupied_map_slots,
            r.cluster.running_jobs,
            r.cluster.queued_map_tasks,
            grab,
            r.directive,
            requested,
            r.granted,
            if r.clamped { "yes" } else { "no" },
            r.duplicates_dropped,
            if r.retried { "yes" } else { "no" },
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Swimlane timeline
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LaneKind {
    Map,
    Reduce,
}

#[derive(Debug, Clone, Copy)]
struct Span {
    node: NodeId,
    kind: LaneKind,
    start: SimTime,
    end: SimTime,
    ch: char,
}

#[derive(Debug, Clone, Copy)]
struct OpenAttempt {
    node: NodeId,
    start: SimTime,
    speculative: bool,
}

/// Reconstruct per-attempt occupancy spans from an exported trace.
///
/// Convention for the one genuinely ambiguous case (two live attempts of
/// the same task when one fails or commits without a node in its event):
/// the **oldest** open attempt is closed. `AttemptKilled` carries its
/// node, so speculative losers always close the right lane.
fn collect_spans(events: &[TraceEvent]) -> (Vec<Span>, Vec<(NodeId, SimTime, SimTime)>) {
    let mut spans = Vec::new();
    let mut open_maps: BTreeMap<(u32, u32), Vec<OpenAttempt>> = BTreeMap::new();
    let mut open_reduces: BTreeMap<(u32, u32), OpenAttempt> = BTreeMap::new();
    let mut down_since: BTreeMap<u16, SimTime> = BTreeMap::new();
    let mut downs: Vec<(NodeId, SimTime, SimTime)> = Vec::new();
    let mut pending_spec: Option<(u32, u32)> = None;
    let end_time = events.last().map(|e| e.time).unwrap_or(SimTime::ZERO);

    let close = |spans: &mut Vec<Span>, a: OpenAttempt, end: SimTime, kind: LaneKind| {
        spans.push(Span {
            node: a.node,
            kind,
            start: a.start,
            end,
            ch: match kind {
                LaneKind::Map if a.speculative => 'S',
                LaneKind::Map => '=',
                LaneKind::Reduce => 'R',
            },
        });
    };

    for e in events {
        match &e.kind {
            TraceKind::SpeculativeLaunch { job, task, .. } => {
                pending_spec = Some((job.0, task.0));
            }
            TraceKind::MapStarted {
                job, task, node, ..
            } => {
                let speculative = pending_spec.take() == Some((job.0, task.0));
                open_maps
                    .entry((job.0, task.0))
                    .or_default()
                    .push(OpenAttempt {
                        node: *node,
                        start: e.time,
                        speculative,
                    });
            }
            TraceKind::AttemptKilled { job, task, node } => {
                if let Some(attempts) = open_maps.get_mut(&(job.0, task.0)) {
                    if let Some(i) = attempts.iter().position(|a| a.node == *node) {
                        close(&mut spans, attempts.remove(i), e.time, LaneKind::Map);
                    }
                }
            }
            TraceKind::MapFinished { job, task } | TraceKind::MapFailed { job, task, .. } => {
                if let Some(attempts) = open_maps.get_mut(&(job.0, task.0)) {
                    if !attempts.is_empty() {
                        close(&mut spans, attempts.remove(0), e.time, LaneKind::Map);
                    }
                }
            }
            TraceKind::ReduceStarted { job, reduce, node } => {
                open_reduces.insert(
                    (job.0, *reduce),
                    OpenAttempt {
                        node: *node,
                        start: e.time,
                        speculative: false,
                    },
                );
            }
            TraceKind::ReduceFinished { job, reduce }
            | TraceKind::ReduceFailed { job, reduce, .. } => {
                if let Some(a) = open_reduces.remove(&(job.0, *reduce)) {
                    close(&mut spans, a, e.time, LaneKind::Reduce);
                }
            }
            TraceKind::NodeLost { node } => {
                down_since.insert(node.0, e.time);
                // Map attempts on a dead node get explicit AttemptKilled
                // events; reduces are restarted without one, so close any
                // open reduce lane here.
                let stranded: Vec<_> = open_reduces
                    .iter()
                    .filter(|(_, a)| a.node == *node)
                    .map(|(k, _)| *k)
                    .collect();
                for k in stranded {
                    let a = open_reduces.remove(&k).unwrap();
                    close(&mut spans, a, e.time, LaneKind::Reduce);
                }
            }
            TraceKind::NodeRejoined { node } => {
                if let Some(start) = down_since.remove(&node.0) {
                    downs.push((*node, start, e.time));
                }
            }
            _ => {}
        }
    }
    for (job_task, attempts) in open_maps {
        let _ = job_task;
        for a in attempts {
            close(&mut spans, a, end_time, LaneKind::Map);
        }
    }
    for (_, a) in open_reduces {
        close(&mut spans, a, end_time, LaneKind::Reduce);
    }
    for (node, start) in down_since {
        downs.push((NodeId(node), start, end_time));
    }
    downs.sort_by_key(|(n, s, _)| (n.0, s.as_millis()));
    (spans, downs)
}

/// Render an exported trace as a per-node/per-slot swimlane chart.
///
/// Each row is one slot-lane of one node (`m` lanes run map attempts,
/// `r` lanes run reduces); time flows left to right across `buckets`
/// columns. Cells: `=` map attempt, `S` speculative attempt, `R` reduce,
/// `x` node down, `.` idle. Lane assignment is first-fit in event order,
/// so the chart is a pure function of the trace.
pub fn render_swimlanes(events: &[TraceEvent], buckets: usize) -> String {
    assert!(buckets > 0, "need at least one bucket");
    if events.is_empty() {
        return String::from("swimlanes: (no events)\n");
    }
    let (spans, downs) = collect_spans(events);
    let t0 = events.first().unwrap().time.as_millis();
    let t1 = events.last().unwrap().time.as_millis().max(t0 + 1);
    let width_ms = (t1 - t0).div_ceil(buckets as u64).max(1);
    let col = |t: u64| (((t.max(t0) - t0) / width_ms) as usize).min(buckets - 1);

    // First-fit lane assignment per (node, lane kind).
    struct Lane {
        kind: LaneKind,
        busy_until: u64,
        cells: Vec<char>,
    }
    let mut lanes: BTreeMap<u16, Vec<Lane>> = BTreeMap::new();
    for s in &spans {
        let node_lanes = lanes.entry(s.node.0).or_default();
        let start = s.start.as_millis();
        let end = s.end.as_millis().max(start);
        let lane = match node_lanes
            .iter_mut()
            .find(|l| l.kind == s.kind && l.busy_until <= start)
        {
            Some(l) => l,
            None => {
                node_lanes.push(Lane {
                    kind: s.kind,
                    busy_until: 0,
                    cells: vec!['.'; buckets],
                });
                node_lanes.last_mut().unwrap()
            }
        };
        lane.busy_until = end.max(start + 1);
        for c in col(start)..=col(end.saturating_sub(1).max(start)) {
            lane.cells[c] = s.ch;
        }
    }
    // Node-down intervals cover every lane of the node where it is idle.
    for (node, from, to) in &downs {
        if let Some(node_lanes) = lanes.get_mut(&node.0) {
            for lane in node_lanes.iter_mut() {
                for c in col(from.as_millis())..=col(to.as_millis().saturating_sub(1)) {
                    if lane.cells[c] == '.' {
                        lane.cells[c] = 'x';
                    }
                }
            }
        }
    }

    let mut out = format!(
        "swimlanes: {} .. {}, {} buckets x {}ms \
         ('=' map, 'S' speculative, 'R' reduce, 'x' down)\n",
        SimTime::from_millis(t0),
        SimTime::from_millis(t1),
        buckets,
        width_ms
    );
    for (node, node_lanes) in &lanes {
        let mut m = 0usize;
        let mut r = 0usize;
        for lane in node_lanes {
            let label = match lane.kind {
                LaneKind::Map => {
                    m += 1;
                    format!("node{node} m{}", m - 1)
                }
                LaneKind::Reduce => {
                    r += 1;
                    format!("node{node} r{}", r - 1)
                }
            };
            out.push_str(&format!(
                "  {label:<10} |{}|\n",
                lane.cells.iter().collect::<String>()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ms: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_millis(ms),
            kind,
        }
    }

    #[test]
    fn encode_is_stable_and_parses_back() {
        let e = ev(
            1234,
            TraceKind::MapStarted {
                job: JobId(7),
                task: TaskId(12),
                node: NodeId(3),
                local: false,
            },
        );
        let line = encode_event(&e);
        assert_eq!(
            line,
            "{\"t\":1234,\"kind\":\"MapStarted\",\"job\":7,\"task\":12,\"node\":3,\"local\":false}"
        );
        assert_eq!(parse_event(&line).unwrap(), e);
    }

    #[test]
    fn whole_trace_round_trips() {
        let events = vec![
            ev(0, TraceKind::JobSubmitted { job: JobId(0) }),
            ev(
                0,
                TraceKind::InputAdded {
                    job: JobId(0),
                    splits: 4,
                },
            ),
            ev(
                5,
                TraceKind::ShuffleReady {
                    job: JobId(0),
                    partitions: 2,
                    combiner_in: 100,
                    combiner_out: 10,
                    max_partition_bytes: 4096,
                    min_partition_bytes: 512,
                },
            ),
            ev(9, TraceKind::NodeLost { node: NodeId(5) }),
            ev(
                11,
                TraceKind::JobCompleted {
                    job: JobId(0),
                    failed: true,
                },
            ),
        ];
        let jsonl = encode_trace(&events);
        assert_eq!(parse_trace(&jsonl).unwrap(), events);
    }

    #[test]
    fn replication_events_round_trip() {
        use incmr_dfs::{BlockId, DiskId};
        let events = vec![
            ev(
                10,
                TraceKind::ReplicaLost {
                    block: BlockId(7),
                    node: NodeId(1),
                },
            ),
            ev(
                20,
                TraceKind::ReadFailover {
                    job: JobId(0),
                    task: TaskId(3),
                    from: DiskId(4),
                    to: DiskId(9),
                },
            ),
            ev(
                30,
                TraceKind::ReplicaRestored {
                    block: BlockId(7),
                    node: NodeId(2),
                },
            ),
            ev(
                40,
                TraceKind::InputLost {
                    job: JobId(1),
                    blocks: 3,
                    graceful: false,
                },
            ),
        ];
        let jsonl = encode_trace(&events);
        assert_eq!(parse_trace(&jsonl).unwrap(), events);
        assert!(jsonl.contains("\"kind\":\"ReplicaLost\",\"block\":7,\"node\":1"));
        assert!(jsonl.contains("\"kind\":\"InputLost\",\"job\":1,\"blocks\":3,\"graceful\":false"));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(matches!(
            parse_event("not json"),
            Err(TraceParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_event("{\"t\":1,\"kind\":\"NoSuchKind\"}"),
            Err(TraceParseError::UnknownKind(_))
        ));
        assert!(matches!(
            parse_event("{\"t\":1,\"kind\":\"MapFinished\",\"job\":0}"),
            Err(TraceParseError::MissingField { field: "task", .. })
        ));
        assert!(matches!(
            parse_event("{\"kind\":\"EndOfInput\",\"job\":0}"),
            Err(TraceParseError::Malformed(_))
        ));
        assert!(matches!(
            parse_event("{\"t\":1,\"kind\":\"EndOfInput\",\"job\":0} extra"),
            Err(TraceParseError::Malformed(_))
        ));
    }

    #[test]
    fn memory_and_jsonl_sinks_agree() {
        let events = vec![
            ev(0, TraceKind::JobSubmitted { job: JobId(1) }),
            ev(3, TraceKind::EndOfInput { job: JobId(1) }),
        ];
        let mut mem = MemorySink::new();
        let mut jsonl = JsonlSink::new();
        for e in &events {
            mem.record(e);
            jsonl.record(e);
        }
        assert_eq!(mem.events(), &events[..]);
        assert_eq!(mem.drain_jsonl(), jsonl.drain_jsonl());
        assert!(mem.drain_jsonl().is_empty(), "drain leaves the sink empty");
    }

    #[test]
    fn registry_families_render_and_merge() {
        let mut a = MetricsRegistry::new();
        a.record_map_attempt(1000);
        a.record_queue_wait("fifo", 30);
        let mut b = MetricsRegistry::new();
        b.record_map_attempt(2000);
        b.record_queue_wait("fair", 99);
        b.record_split_wait(5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.map_attempt().count(), 2);
        assert_eq!(merged.queue_wait("fifo").unwrap().count(), 1);
        assert_eq!(merged.queue_wait("fair").unwrap().count(), 1);
        assert_eq!(merged.queue_wait_total().count(), 2);
        let text = merged.render();
        for needle in [
            "map_attempt_ms",
            "shuffle_merge_ms",
            "reduce_ms",
            "provider_eval_interval_ms",
            "queue_wait_ms[fifo]",
            "queue_wait_ms[fair]",
            "split_wait_ms",
            "agg_probe_ms",
        ] {
            assert!(text.contains(needle), "render lacks {needle}:\n{text}");
        }
    }

    #[test]
    fn audit_render_carries_every_field_and_sums_grants() {
        let progress = JobProgress {
            job: JobId(2),
            splits_added: 6,
            splits_completed: 4,
            splits_running: 2,
            splits_pending: 0,
            records_processed: 4000,
            map_output_records: 17,
        };
        let cluster = ClusterStatus {
            total_map_slots: 40,
            occupied_map_slots: 12,
            running_jobs: 2,
            queued_map_tasks: 1,
        };
        let records = vec![
            AuditRecord {
                time: SimTime::ZERO,
                job: JobId(2),
                stage: ProviderStage::InitialInput,
                progress,
                cluster,
                grab_limit: 4,
                directive: AuditDirective::AddInput { requested: 4 },
                granted: 4,
                clamped: false,
                duplicates_dropped: 0,
                retried: false,
            },
            AuditRecord {
                time: SimTime::from_secs(4),
                job: JobId(2),
                stage: ProviderStage::Evaluate,
                progress,
                cluster,
                grab_limit: u64::MAX,
                directive: AuditDirective::AddInput { requested: 9 },
                granted: 2,
                clamped: true,
                duplicates_dropped: 3,
                retried: false,
            },
        ];
        assert_eq!(audited_splits_added(&records, JobId(2)), 6);
        assert_eq!(audited_splits_added(&records, JobId(3)), 0);
        let text = render_audit(&records);
        for needle in [
            "stage=initial_input",
            "stage=evaluate",
            "added=6",
            "grab_limit=4",
            "grab_limit=unlimited",
            "directive=AddInput",
            "requested=9",
            "granted=2",
            "clamped=yes",
            "dups=3",
            "retried=no",
        ] {
            assert!(text.contains(needle), "audit lacks {needle}:\n{text}");
        }
    }

    #[test]
    fn swimlanes_chart_is_deterministic_and_marks_kinds() {
        let job = JobId(0);
        let events = vec![
            ev(0, TraceKind::JobSubmitted { job }),
            ev(
                0,
                TraceKind::MapStarted {
                    job,
                    task: TaskId(0),
                    node: NodeId(1),
                    local: true,
                },
            ),
            ev(
                100,
                TraceKind::SpeculativeLaunch {
                    job,
                    task: TaskId(0),
                    node: NodeId(2),
                },
            ),
            ev(
                100,
                TraceKind::MapStarted {
                    job,
                    task: TaskId(0),
                    node: NodeId(2),
                    local: false,
                },
            ),
            ev(
                200,
                TraceKind::AttemptKilled {
                    job,
                    task: TaskId(0),
                    node: NodeId(2),
                },
            ),
            ev(
                200,
                TraceKind::MapFinished {
                    job,
                    task: TaskId(0),
                },
            ),
            ev(300, TraceKind::NodeLost { node: NodeId(1) }),
            ev(400, TraceKind::NodeRejoined { node: NodeId(1) }),
            ev(
                500,
                TraceKind::ReduceStarted {
                    job,
                    reduce: 0,
                    node: NodeId(3),
                },
            ),
            ev(600, TraceKind::ReduceFinished { job, reduce: 0 }),
            ev(600, TraceKind::JobCompleted { job, failed: false }),
        ];
        let chart = render_swimlanes(&events, 12);
        assert_eq!(chart, render_swimlanes(&events, 12));
        assert!(chart.contains("node1 m0"), "{chart}");
        assert!(chart.contains('='), "{chart}");
        assert!(chart.contains('S'), "{chart}");
        assert!(chart.contains('R'), "{chart}");
        assert!(chart.contains('x'), "{chart}");
        assert_eq!(render_swimlanes(&[], 8), "swimlanes: (no events)\n");
    }
}
