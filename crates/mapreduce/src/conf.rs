//! `JobConf` — the primary interface for describing a job, mirroring
//! Hadoop's `JobConf` (paper Section IV).
//!
//! A `JobConf` is a string key→value map with typed accessors. The paper
//! extends Hadoop's parameter set with three keys, re-exported here as
//! constants: [`keys::DYNAMIC_JOB`], [`keys::DYNAMIC_JOB_POLICY`], and
//! [`keys::DYNAMIC_INPUT_PROVIDER`].

use std::collections::BTreeMap;
use std::fmt;

/// Well-known configuration keys.
pub mod keys {
    /// Human-readable job name.
    pub const JOB_NAME: &str = "mapred.job.name";
    /// Boolean flag, set true for dynamic jobs (paper Section IV).
    pub const DYNAMIC_JOB: &str = "dynamic.job";
    /// Name of the policy controlling a dynamic job's growth.
    pub const DYNAMIC_JOB_POLICY: &str = "dynamic.job.policy";
    /// Class name of the Input Provider implementation.
    pub const DYNAMIC_INPUT_PROVIDER: &str = "dynamic.input.provider";
    /// Required sample size `k` for sampling jobs.
    pub const SAMPLING_K: &str = "sampling.size.k";
    /// Number of reduce tasks (the sampling job uses 1).
    pub const NUM_REDUCE_TASKS: &str = "mapred.reduce.tasks";
    /// Type name of the map-side combiner, when one is set (mirrors
    /// Hadoop's `mapred.combiner.class`; informational — the actual
    /// combiner travels in the `JobSpec`).
    pub const COMBINER_CLASS: &str = "mapred.combiner.class";
    /// Guard-rail plane: extra provider consultations a job may spend on
    /// recoverable Input Provider failures before the job is failed
    /// (default 0 — fail on the first fault).
    pub const PROVIDER_RETRY_BUDGET: &str = "dynamic.provider.retry.budget";
    /// Guard-rail plane: consecutive unproductive driver evaluations (no
    /// new splits, nothing running or pending) before the job is declared
    /// wedged; `0` disables the watchdog.
    pub const MAX_IDLE_EVALUATIONS: &str = "dynamic.job.max.idle.evaluations";
    /// Guard-rail plane: wall-clock deadline for the whole job, in
    /// simulated milliseconds from submission; absent means no deadline.
    pub const JOB_DEADLINE_MS: &str = "mapred.job.deadline.ms";
    /// Guard-rail plane: boolean — on deadline expiry, finish with the
    /// output gathered so far instead of failing the job.
    pub const ALLOW_PARTIAL: &str = "mapred.job.allow.partial";
    /// Observability plane: trace sink the runtime should enable at
    /// submission — `"memory"` (buffered [`TraceEvent`]s, the
    /// `enable_tracing` behaviour) or `"jsonl"` (eager JSONL encoding).
    /// Absent means tracing stays as the caller configured it.
    ///
    /// [`TraceEvent`]: crate::trace::TraceEvent
    pub const TRACE_SINK: &str = "mapred.job.trace.sink";
    /// Memoization plane: stable identity of the job's *computation*
    /// (mapper, predicate, projection, `k` — not the submission). Jobs
    /// sharing a signature share memoized per-split map output. Absent,
    /// the runtime derives one by hashing the full conf, so distinct
    /// queries never collide by default.
    pub const JOB_SIGNATURE: &str = "mapred.job.signature";
    /// Memoization plane: boolean — run this dynamic job as a standing
    /// query. Instead of declaring end-of-input when the provider's pool
    /// drains, the job parks and is re-awoken when new blocks arrive
    /// (`Namespace` evolve through [`MrRuntime::evolve`]).
    ///
    /// [`MrRuntime::evolve`]: crate::MrRuntime::evolve
    pub const CONTINUOUS: &str = "dynamic.job.continuous";
    /// Replication plane: target replica count for the job's input
    /// dataset (mirrors Hadoop's `dfs.replication`). Informational at
    /// job level — placement itself happens when the dataset is built
    /// (see `incmr_dfs`'s `ReplicatedPlacement`) — but a malformed or
    /// zero value is rejected at build/submit time.
    pub const DFS_REPLICATION: &str = "dfs.replication";
    /// Observability plane: boolean (default **true**) — record this
    /// job's latencies into the runtime's histogram
    /// [`MetricsRegistry`](crate::obs::MetricsRegistry). Set false to
    /// exclude a job from both its per-job and the cluster-wide
    /// histograms.
    pub const HISTOGRAM_ENABLED: &str = "mapred.job.histogram.enabled";
    /// Approximate-aggregation plane: relative error bound `e` ∈ (0, 1)
    /// for `WITH ERROR e` queries. Presence of this key makes the job an
    /// *estimating* aggregate job: the runtime folds per-group
    /// accumulators from map output and probes a CLT stopping rule before
    /// every driver evaluation (see `crate::approx`).
    pub const AGG_ERROR: &str = "mapred.agg.error";
    /// Approximate-aggregation plane: confidence level `c` ∈ (0, 1) for
    /// `CONFIDENCE c` (default 0.95 when only the error bound is set).
    pub const AGG_CONFIDENCE: &str = "mapred.agg.confidence";
    /// Approximate-aggregation plane: growth-round budget — how many
    /// times the estimating Input Provider may draw another batch of
    /// splits before it must stop with `BudgetExhausted`. Must be ≥ 1.
    pub const AGG_ROUNDS: &str = "mapred.agg.rounds";
    /// Approximate-aggregation plane: the aggregate function list, in
    /// projection order, as a comma list of `count|sum|avg` (written by
    /// the compiler; the runtime's probe needs it to pick estimators).
    pub const AGG_FUNCS: &str = "mapred.agg.funcs";
    /// Approximate-aggregation plane: the candidate input size `M` the
    /// expansion estimator scales against (the dataset's split count).
    pub const AGG_TOTAL_SPLITS: &str = "mapred.agg.total.splits";
}

/// A job's configuration: an ordered string map with typed accessors.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobConf {
    entries: BTreeMap<String, String>,
}

/// Error returned when a typed accessor cannot parse a value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfError {
    /// The key being read.
    pub key: String,
    /// The raw value that failed to parse.
    pub value: String,
    /// The type that was requested.
    pub wanted: &'static str,
}

impl fmt::Display for ConfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "conf key {}={:?} is not a valid {}",
            self.key, self.value, self.wanted
        )
    }
}

impl std::error::Error for ConfError {}

impl JobConf {
    /// An empty configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a key (builder style).
    pub fn with(mut self, key: &str, value: impl fmt::Display) -> Self {
        self.set(key, value);
        self
    }

    /// Set a key.
    pub fn set(&mut self, key: &str, value: impl fmt::Display) {
        self.entries.insert(key.to_string(), value.to_string());
    }

    /// Raw string lookup.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Boolean lookup; absent keys default to `false`, matching Hadoop's
    /// `getBoolean` semantics for flags like `dynamic.job`.
    pub fn get_bool(&self, key: &str) -> bool {
        self.get(key)
            .map(|v| v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    }

    /// Integer lookup with a default for absent keys.
    pub fn get_u64_or(&self, key: &str, default: u64) -> Result<u64, ConfError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfError {
                key: key.to_string(),
                value: v.to_string(),
                wanted: "u64",
            }),
        }
    }

    /// Float lookup with a default for absent keys.
    pub fn get_f64_or(&self, key: &str, default: f64) -> Result<f64, ConfError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ConfError {
                key: key.to_string(),
                value: v.to_string(),
                wanted: "f64",
            }),
        }
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of set keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no keys are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for JobConf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let conf = JobConf::new()
            .with(keys::JOB_NAME, "sample")
            .with(keys::DYNAMIC_JOB, true)
            .with(keys::SAMPLING_K, 10_000);
        assert_eq!(conf.get(keys::JOB_NAME), Some("sample"));
        assert!(conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(conf.get_u64_or(keys::SAMPLING_K, 0).unwrap(), 10_000);
        assert_eq!(conf.len(), 3);
        assert!(!conf.is_empty());
    }

    #[test]
    fn absent_keys_use_defaults() {
        let conf = JobConf::new();
        assert!(!conf.get_bool(keys::DYNAMIC_JOB));
        assert_eq!(conf.get_u64_or("x", 7).unwrap(), 7);
        assert_eq!(conf.get_f64_or("y", 0.5).unwrap(), 0.5);
        assert!(conf.is_empty());
    }

    #[test]
    fn bad_values_report_errors() {
        let conf = JobConf::new().with("n", "abc");
        let err = conf.get_u64_or("n", 0).unwrap_err();
        assert_eq!(err.key, "n");
        assert_eq!(err.wanted, "u64");
        assert!(err.to_string().contains("abc"));
        assert!(conf.get_f64_or("n", 0.0).is_err());
    }

    #[test]
    fn bool_parsing_is_case_insensitive_and_strict() {
        let conf = JobConf::new().with("a", "TRUE").with("b", "1");
        assert!(conf.get_bool("a"));
        assert!(!conf.get_bool("b"), "only the literal 'true' counts");
    }

    #[test]
    fn overwrite_replaces() {
        let mut conf = JobConf::new().with("k", "1");
        conf.set("k", "2");
        assert_eq!(conf.get("k"), Some("2"));
        assert_eq!(conf.len(), 1);
    }

    #[test]
    fn display_renders_sorted_lines() {
        let conf = JobConf::new().with("b", 2).with("a", 1);
        assert_eq!(conf.to_string(), "a=1\nb=2");
    }
}
