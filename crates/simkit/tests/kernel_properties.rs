//! Property-based tests of the simulation kernel's numerical components.

use proptest::prelude::*;

use incmr_simkit::dist::Zipf;
use incmr_simkit::resource::PsResource;
use incmr_simkit::rng::DetRng;
use incmr_simkit::stats::{percentile, OnlineStats, Sampled, TimeWeighted};
use incmr_simkit::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Welford merge equals sequential accumulation for any split point.
    #[test]
    fn welford_merge_any_split(xs in prop::collection::vec(-1e6f64..1e6, 1..200), split in 0usize..200) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-3 * (1.0 + whole.variance().abs()));
    }

    /// Percentiles are monotone in p and bounded by the extremes.
    #[test]
    fn percentile_monotone_and_bounded(mut xs in prop::collection::vec(-1e5f64..1e5, 1..100), p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let v_lo = percentile(&xs, lo).unwrap();
        let v_hi = percentile(&xs, hi).unwrap();
        prop_assert!(v_lo <= v_hi + 1e-9);
        prop_assert!(*xs.first().unwrap() <= v_lo + 1e-9);
        prop_assert!(v_hi <= *xs.last().unwrap() + 1e-9);
    }

    /// A time-weighted mean always lies within the signal's observed range.
    #[test]
    fn time_weighted_mean_is_bounded(values in prop::collection::vec((0u64..10_000, 0.0f64..100.0), 1..50)) {
        let mut sorted = values.clone();
        sorted.sort_by_key(|(t, _)| *t);
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut lo: f64 = 0.0;
        let mut hi: f64 = 0.0;
        for (t, v) in &sorted {
            tw.set(SimTime::from_millis(*t), *v);
            lo = lo.min(*v);
            hi = hi.max(*v);
        }
        let end = SimTime::from_millis(sorted.last().unwrap().0 + 1);
        let mean = tw.mean(end);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9, "mean {mean} outside [{lo}, {hi}]");
    }

    /// Sampled rates integrate back to (approximately) the observed total.
    #[test]
    fn sampled_rates_integrate_to_total(total in 0.0f64..1e9, intervals in 1u64..50) {
        let mut s = Sampled::new(SimTime::ZERO, SimDuration::from_secs(30));
        s.observe(SimTime::from_secs(30 * intervals), total);
        let integrated: f64 = s.rates().iter().map(|r| r * 30.0).sum();
        prop_assert!((integrated - total).abs() < 1e-6 * (1.0 + total));
        prop_assert_eq!(s.rates().len() as u64, intervals);
    }

    /// Advancing a PS resource to its own `next_completion` completes at
    /// least one flow.
    #[test]
    fn ps_next_completion_is_tight(amounts in prop::collection::vec(1.0f64..10_000.0, 1..20)) {
        let mut r = PsResource::new(500.0);
        for a in &amounts {
            r.add_flow(SimTime::ZERO, *a);
        }
        let at = r.next_completion(SimTime::ZERO).unwrap();
        r.advance(at);
        prop_assert!(!r.take_completed().is_empty(), "nothing completed at the predicted instant");
    }

    /// Zipf sampling never leaves the rank range and hits rank 1 most often
    /// for positive exponents (statistically, over many draws).
    #[test]
    fn zipf_ranks_in_range(n in 1usize..200, z in 0.0f64..3.0, seed in any::<u64>()) {
        let d = Zipf::new(n, z);
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..200 {
            let k = d.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Forked RNG streams with distinct tags are uncorrelated enough to
    /// differ (regression guard for the seed-derivation function).
    #[test]
    fn forked_streams_differ(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>()) {
        prop_assume!(a != b);
        let root = DetRng::seed_from(seed);
        let xs: Vec<u64> = {
            let mut r = root.fork(a);
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        let ys: Vec<u64> = {
            let mut r = root.fork(b);
            (0..4).map(|_| rand::RngCore::next_u64(&mut r)).collect()
        };
        prop_assert_ne!(xs, ys);
    }
}
