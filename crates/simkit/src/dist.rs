//! Samplers for the distributions the paper's evaluation depends on.
//!
//! The central one is the **Zipfian** distribution (paper Section V-B): the
//! assignment of each predicate-matching record to an input partition is a
//! draw from `f(k; z, N) = (1/k^z) / Σ_{n=1..N} (1/n^z)`. `z = 0` degenerates
//! to uniform, `z = 1` is "moderate" and `z = 2` "high" skew.

use rand::Rng;

use crate::rng::DetRng;

/// A Zipfian distribution over ranks `1..=n` with exponent `z`.
///
/// Sampling is inverse-CDF with binary search: `O(log n)` per draw after an
/// `O(n)` precomputation.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
    z: f64,
}

impl Zipf {
    /// Build the distribution for `n` ranks and exponent `z >= 0`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `z` is negative/non-finite.
    pub fn new(n: usize, z: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            z.is_finite() && z >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point round-off leaving the last entry < 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf, z }
    }

    /// Number of ranks.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// The exponent this distribution was built with.
    pub fn exponent(&self) -> f64 {
        self.z
    }

    /// Probability mass of rank `k` (1-based).
    pub fn pmf(&self, k: usize) -> f64 {
        assert!((1..=self.n()).contains(&k), "rank out of range");
        let lower = if k == 1 { 0.0 } else { self.cdf[k - 2] };
        self.cdf[k - 1] - lower
    }

    /// Draw a rank in `1..=n`.
    pub fn sample(&self, rng: &mut DetRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        // partition_point returns the count of entries < u, i.e. the 0-based
        // index of the first cdf entry >= u; +1 converts to a 1-based rank.
        self.cdf.partition_point(|&c| c < u) + 1
    }

    /// Draw `total` ranks and return a histogram `counts[rank-1]`.
    ///
    /// This is the multinomial partition-assignment used to plant matching
    /// records into input splits (Figure 4's construction).
    pub fn sample_counts(&self, total: u64, rng: &mut DetRng) -> Vec<u64> {
        let mut counts = vec![0u64; self.n()];
        for _ in 0..total {
            counts[self.sample(rng) - 1] += 1;
        }
        counts
    }

    /// Split `total` into exactly-even counts (the `z = 0` case in the paper
    /// is constructed as "an equal number of matching records in each
    /// partition", not as a uniform random draw). Remainders go to the first
    /// `total % n` ranks.
    pub fn even_counts(total: u64, n: usize) -> Vec<u64> {
        assert!(n > 0);
        let base = total / n as u64;
        let rem = (total % n as u64) as usize;
        (0..n).map(|i| base + u64::from(i < rem)).collect()
    }
}

/// Sample an exponentially-distributed duration with the given mean, in
/// milliseconds (used for user think times in the workload generator).
pub fn exponential_millis(mean_millis: f64, rng: &mut DetRng) -> u64 {
    assert!(mean_millis >= 0.0 && mean_millis.is_finite());
    if mean_millis == 0.0 {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    (-mean_millis * u.ln()).round().max(0.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z0_is_uniform() {
        let z = Zipf::new(40, 0.0);
        for k in 1..=40 {
            assert!((z.pmf(k) - 1.0 / 40.0).abs() < 1e-12);
        }
    }

    #[test]
    fn pmf_sums_to_one_and_is_monotone_decreasing() {
        for &e in &[0.5, 1.0, 2.0] {
            let z = Zipf::new(100, e);
            let total: f64 = (1..=100).map(|k| z.pmf(k)).sum();
            assert!((total - 1.0).abs() < 1e-9);
            for k in 2..=100 {
                assert!(z.pmf(k) <= z.pmf(k - 1) + 1e-12);
            }
        }
    }

    #[test]
    fn z2_concentrates_mass_at_rank_one() {
        // N=40, z=2: p(1) = 1 / H_40^(2) ≈ 0.617 — the paper's "8700 of
        // 15000 in a single partition" figure is one multinomial draw from
        // this (expected 9253).
        let z = Zipf::new(40, 2.0);
        assert!((z.pmf(1) - 0.6169).abs() < 0.001, "pmf(1) = {}", z.pmf(1));
    }

    #[test]
    fn z1_top_rank_mass_matches_harmonic_number() {
        // N=40, z=1: p(1) = 1 / H_40 ≈ 0.2337.
        let z = Zipf::new(40, 1.0);
        assert!((z.pmf(1) - 0.2337).abs() < 0.001, "pmf(1) = {}", z.pmf(1));
    }

    #[test]
    fn sample_counts_preserve_total_and_roughly_match_pmf() {
        let z = Zipf::new(40, 1.0);
        let mut rng = DetRng::seed_from(99);
        let total = 15_000u64;
        let counts = z.sample_counts(total, &mut rng);
        assert_eq!(counts.iter().sum::<u64>(), total);
        // Rank 1 should get close to its expected share (±15%).
        let expect = z.pmf(1) * total as f64;
        assert!(
            (counts[0] as f64 - expect).abs() < 0.15 * expect,
            "rank-1 count {} vs expected {expect}",
            counts[0]
        );
    }

    #[test]
    fn even_counts_distributes_remainder() {
        assert_eq!(Zipf::even_counts(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(Zipf::even_counts(15_000, 40), vec![375; 40]);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = DetRng::seed_from(5);
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| exponential_millis(1000.0, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 1000.0).abs() < 50.0, "mean = {mean}");
    }

    #[test]
    fn exponential_zero_mean_is_zero() {
        let mut rng = DetRng::seed_from(5);
        assert_eq!(exponential_millis(0.0, &mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
