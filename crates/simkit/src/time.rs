//! Virtual time: millisecond-resolution instants and durations.
//!
//! The simulated clock is a plain `u64` count of milliseconds since the start
//! of the simulation. Milliseconds are fine-grained enough for cluster-level
//! modelling (task durations are hundreds of milliseconds to minutes) while
//! keeping arithmetic exact — no floating-point clock drift.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant on the simulated clock (milliseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Milliseconds since the epoch.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Duration of `ms` milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Duration of `mins` minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Duration of `hours` hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Duration from a float number of seconds, rounded to the nearest
    /// millisecond. Negative or NaN inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        // NaN and non-positive inputs clamp to zero.
        if secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Length in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_secs(2).as_millis(), 2000);
        assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimDuration::from_hours(1).as_millis(), 3_600_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_millis(250);
        assert_eq!(t.as_millis(), 10_250);
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_millis(250));
        // Saturating subtraction: an earlier minus a later instant is zero.
        assert_eq!(
            SimTime::from_secs(1) - SimTime::from_secs(5),
            SimDuration::ZERO
        );
        assert_eq!(SimDuration::from_secs(3) * 2, SimDuration::from_secs(6));
        assert_eq!(
            SimDuration::from_secs(3) / 2,
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_millis(1234).to_string(), "t+1.234s");
        assert_eq!(SimDuration::from_millis(50).to_string(), "0.050s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(u32::MAX as u64));
    }
}
