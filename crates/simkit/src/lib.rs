//! # incmr-simkit
//!
//! Deterministic discrete-event simulation kernel used by the `incmr`
//! MapReduce framework reproduction.
//!
//! The kernel deliberately contains no domain knowledge. It provides:
//!
//! * [`SimTime`] / [`SimDuration`] — a millisecond-resolution virtual clock,
//! * [`Sim`] — a cancelable future-event list plus the clock,
//! * [`run_until`] / [`Handler`] — a minimal driver loop,
//! * [`rng::DetRng`] — seeded, forkable random-number streams,
//! * [`dist`] — Zipfian / uniform / exponential samplers,
//! * [`stats`] — online statistics (Welford, time-weighted means, sampled
//!   series, percentiles),
//! * [`resource::PsResource`] — a processor-sharing bandwidth resource used
//!   to model disks and network links.
//!
//! Everything is single-threaded and deterministic: two runs with the same
//! seeds produce byte-identical results, which is what lets the experiment
//! harness reproduce the paper's "average of 5 runs" as an average over 5
//! seeds.

pub mod dist;
pub mod event;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventId, Sim, StopReason};
pub use time::{SimDuration, SimTime};

/// A simulation world: receives events popped from the queue.
///
/// The handler gets mutable access to the [`Sim`] so it can schedule and
/// cancel follow-up events while processing the current one.
pub trait Handler<E> {
    /// Process one event. `sim.now()` is the event's timestamp.
    fn handle(&mut self, sim: &mut Sim<E>, event: E);
}

impl<E, F: FnMut(&mut Sim<E>, E)> Handler<E> for F {
    fn handle(&mut self, sim: &mut Sim<E>, event: E) {
        self(sim, event)
    }
}

/// Drive `handler` until the queue is exhausted or the clock passes `until`.
///
/// Events scheduled exactly at `until` are still delivered; the first event
/// strictly later than `until` stops the run (and remains queued).
pub fn run_until<E, H: Handler<E>>(
    sim: &mut Sim<E>,
    handler: &mut H,
    until: Option<SimTime>,
) -> StopReason {
    loop {
        let Some(at) = sim.peek_time() else {
            return StopReason::QueueEmpty;
        };
        if let Some(limit) = until {
            if at > limit {
                sim.advance_to(limit);
                return StopReason::TimeLimit;
            }
        }
        let (_, ev) = sim.pop().expect("peeked event must pop");
        handler.handle(sim, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Tick(u32),
    }

    struct Collect(Vec<(SimTime, u32)>);
    impl Handler<Ev> for Collect {
        fn handle(&mut self, sim: &mut Sim<Ev>, ev: Ev) {
            let Ev::Tick(n) = ev;
            self.0.push((sim.now(), n));
            if n < 3 {
                sim.schedule_after(SimDuration::from_secs(1), Ev::Tick(n + 1));
            }
        }
    }

    #[test]
    fn run_until_drains_queue_in_time_order() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        let mut h = Collect(Vec::new());
        let reason = run_until(&mut sim, &mut h, None);
        assert_eq!(reason, StopReason::QueueEmpty);
        assert_eq!(
            h.0,
            vec![
                (SimTime::from_secs(5), 1),
                (SimTime::from_secs(6), 2),
                (SimTime::from_secs(7), 3)
            ]
        );
    }

    #[test]
    fn run_until_respects_time_limit() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), Ev::Tick(1));
        let mut h = Collect(Vec::new());
        let reason = run_until(&mut sim, &mut h, Some(SimTime::from_secs(6)));
        assert_eq!(reason, StopReason::TimeLimit);
        assert_eq!(h.0.len(), 2);
        // The clock is advanced to the limit even though the next event is later.
        assert_eq!(sim.now(), SimTime::from_secs(6));
        // The unprocessed event survives.
        assert_eq!(sim.peek_time(), Some(SimTime::from_secs(7)));
    }

    #[test]
    fn closure_handlers_work() {
        let mut sim = Sim::new();
        sim.schedule_at(SimTime::from_millis(10), Ev::Tick(9));
        let mut seen = 0u32;
        let mut handler = |_: &mut Sim<Ev>, Ev::Tick(n): Ev| seen = n;
        run_until(&mut sim, &mut handler, None);
        assert_eq!(seen, 9);
    }
}
