//! Online statistics used by the metrics subsystem and the experiment
//! harness: Welford mean/variance, time-weighted averages (for utilisation
//! metrics), fixed-interval sampled series (the paper samples CPU and disk
//! counters every 30 seconds), and percentiles.

use crate::time::{SimDuration, SimTime};

/// Numerically-stable running mean / variance / min / max (Welford).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. "number of
/// occupied map slots". Feed it every change point; query the average over
/// the observed window.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
}

impl TimeWeighted {
    /// Start tracking at `start` with initial value `value`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            start,
            last_change: start,
            current: value,
            weighted_sum: 0.0,
        }
    }

    /// Record that the signal changed to `value` at time `now`.
    ///
    /// # Panics
    /// Panics (debug) if `now` precedes the previous change.
    pub fn set(&mut self, now: SimTime, value: f64) {
        debug_assert!(now >= self.last_change);
        self.weighted_sum += self.current * (now - self.last_change).as_millis() as f64;
        self.last_change = now;
        self.current = value;
    }

    /// Adjust the signal by `delta` at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let next = self.current + delta;
        self.set(now, next);
    }

    /// The signal's current value.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted mean over `[start, now]` (the current segment counts).
    /// Returns the current value if no time has elapsed.
    pub fn mean(&self, now: SimTime) -> f64 {
        let total = (now - self.start).as_millis() as f64;
        if total == 0.0 {
            return self.current;
        }
        let acc = self.weighted_sum + self.current * (now - self.last_change).as_millis() as f64;
        acc / total
    }
}

/// A cumulative counter sampled into fixed-interval rates, mirroring the
/// paper's "CPU utilization and disk reads monitored at 30 second intervals".
///
/// Feed monotone cumulative totals via [`Sampled::observe`]; read back
/// per-interval rates (delta / interval).
#[derive(Debug, Clone)]
pub struct Sampled {
    interval: SimDuration,
    next_sample: SimTime,
    last_total: f64,
    rates: Vec<f64>,
}

impl Sampled {
    /// Sample every `interval`, starting at `start + interval`.
    pub fn new(start: SimTime, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "sampling interval must be positive");
        Sampled {
            interval,
            next_sample: start + interval,
            last_total: 0.0,
            rates: Vec::new(),
        }
    }

    /// Report the cumulative total as of `now`. Closes out any sample
    /// intervals that have fully elapsed, attributing the delta evenly
    /// across them (the counter is assumed to grow smoothly in between).
    pub fn observe(&mut self, now: SimTime, total: f64) {
        while now >= self.next_sample {
            // Intervals since last boundary share the growth evenly; with
            // per-event observation granularity this is a fine approximation.
            let pending = ((now - self.next_sample).as_millis() / self.interval.as_millis()) + 1;
            let delta = (total - self.last_total) / pending as f64;
            for _ in 0..pending {
                self.rates.push(delta / self.interval.as_secs_f64());
                self.next_sample += self.interval;
            }
            self.last_total = total;
        }
    }

    /// Per-interval rates (units of the counter per second).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Mean of the per-interval rates.
    pub fn mean_rate(&self) -> f64 {
        if self.rates.is_empty() {
            0.0
        } else {
            self.rates.iter().sum::<f64>() / self.rates.len() as f64
        }
    }
}

/// Percentile of a sample via linear interpolation (p in `[0, 100]`).
/// Returns `None` on an empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted"
    );
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return Some(sorted[lo]);
    }
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Arithmetic mean of a slice (0 if empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds the value 0,
/// bucket `i ≥ 1` holds values whose bit length is `i`, i.e. the range
/// `[2^(i-1), 2^i - 1]`. 65 buckets cover the whole `u64` domain.
pub const LOG_HISTOGRAM_BUCKETS: usize = 65;

/// A latency histogram over `u64` observations (simulated milliseconds)
/// with a *fixed* logarithmic bucket layout, so two histograms are always
/// mergeable bucket-by-bucket and every derived statistic is a pure
/// function of the integer counts — no floating-point accumulation order,
/// no sampling, nothing that could differ across thread counts.
///
/// Quantiles are reported as the **upper bound of the bucket** holding the
/// requested rank (clamped to the exact observed maximum), which makes
/// them deterministic, monotone in `p`, and stable under merging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: [u64; LOG_HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; LOG_HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The bucket index holding `v`: its bit length.
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The inclusive value range `[lo, hi]` of bucket `i`.
    pub fn bucket_range(i: usize) -> (u64, u64) {
        assert!(i < LOG_HISTOGRAM_BUCKETS, "bucket out of range");
        if i == 0 {
            (0, 0)
        } else {
            (1u64 << (i - 1), (1u64 << (i - 1)) - 1 + (1u64 << (i - 1)))
        }
    }

    /// Record one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum observed value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Raw bucket counts (fixed layout; index via [`Self::bucket_range`]).
    pub fn buckets(&self) -> &[u64; LOG_HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// The quantile at `p ∈ [0, 100]`: the upper bound of the bucket
    /// containing the observation of rank `ceil(p/100 · count)`, clamped
    /// to the observed maximum. `None` if empty.
    pub fn quantile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_range(i).1.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(50.0)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(95.0)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> Option<u64> {
        self.quantile(99.0)
    }

    /// Fold another histogram into this one. Because the bucket layout is
    /// fixed, merging is exact: `merge(a, b)` holds precisely the union of
    /// both observation sets, in any merge order.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..50).map(|i| (i * 37 % 11) as f64).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let (mut a, mut b) = (OnlineStats::new(), OnlineStats::new());
        xs[..20].iter().for_each(|&x| a.push(x));
        xs[20..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(10), 4.0); // 0 for 10s
        tw.set(SimTime::from_secs(20), 2.0); // 4 for 10s
                                             // 2 for 10s → (0*10 + 4*10 + 2*10) / 30 = 2.0
        assert!((tw.mean(SimTime::from_secs(30)) - 2.0).abs() < 1e-12);
        assert_eq!(tw.current(), 2.0);
    }

    #[test]
    fn time_weighted_add_tracks_deltas() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::from_secs(5), 2.0);
        assert_eq!(tw.current(), 3.0);
        tw.add(SimTime::from_secs(10), -3.0);
        assert_eq!(tw.current(), 0.0);
        // (1*5 + 3*5 + 0*10)/20 = 1.0
        assert!((tw.mean(SimTime::from_secs(20)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_rates() {
        let mut s = Sampled::new(SimTime::ZERO, SimDuration::from_secs(30));
        s.observe(SimTime::from_secs(30), 3000.0); // 100/s over first interval
        s.observe(SimTime::from_secs(90), 3000.0); // flat over next two
        assert_eq!(s.rates().len(), 3);
        assert!((s.rates()[0] - 100.0).abs() < 1e-9);
        assert!((s.rates()[1]).abs() < 1e-9);
        assert!((s.mean_rate() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(4.0));
        assert_eq!(percentile(&xs, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn mean_of_slice() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn log_histogram_bucket_layout() {
        assert_eq!(LogHistogram::bucket_index(0), 0);
        assert_eq!(LogHistogram::bucket_index(1), 1);
        assert_eq!(LogHistogram::bucket_index(2), 2);
        assert_eq!(LogHistogram::bucket_index(3), 2);
        assert_eq!(LogHistogram::bucket_index(4), 3);
        assert_eq!(LogHistogram::bucket_index(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_range(0), (0, 0));
        assert_eq!(LogHistogram::bucket_range(1), (1, 1));
        assert_eq!(LogHistogram::bucket_range(3), (4, 7));
        assert_eq!(LogHistogram::bucket_range(64), (1 << 63, u64::MAX));
        // Every value falls inside its own bucket's range.
        for v in [0u64, 1, 2, 7, 8, 1000, u64::MAX] {
            let (lo, hi) = LogHistogram::bucket_range(LogHistogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn log_histogram_quantiles_are_bucket_bounds_clamped_to_max() {
        let mut h = LogHistogram::new();
        assert_eq!(h.p50(), None);
        for v in [3u64, 5, 9, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 117);
        assert_eq!(h.max(), 100);
        // rank 2 of 4 → bucket of 5 ([4,7]) → upper bound 7.
        assert_eq!(h.p50(), Some(7));
        // The top quantiles land in 100's bucket [64,127], clamped to 100.
        assert_eq!(h.p99(), Some(100));
        assert_eq!(h.quantile(100.0), Some(100));
        // Monotone in p.
        let qs: Vec<_> = (0..=100).map(|p| h.quantile(p as f64).unwrap()).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn log_histogram_merge_is_exact_and_commutative() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut both = LogHistogram::new();
        for (i, v) in [1u64, 2, 40, 9000, 0, 17, 1 << 40].iter().enumerate() {
            if i % 2 == 0 {
                a.record(*v);
            } else {
                b.record(*v);
            }
            both.record(*v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab, both);
        assert_eq!(ab.quantile(95.0), both.quantile(95.0));
    }
}
