//! Deterministic, forkable random-number streams.
//!
//! Every source of randomness in a simulation run is derived from a single
//! root seed via SplitMix64 mixing, so adding a new consumer of randomness in
//! one subsystem does not perturb the stream seen by another (the classic
//! "seed hygiene" problem in simulation studies). Components receive their
//! own [`DetRng`] via [`DetRng::fork`] with a domain tag.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// SplitMix64 output function — used to derive child seeds from a parent
/// seed and a tag. Good avalanche behaviour; the standard choice for seed
/// derivation.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random-number generator with stable forking.
///
/// Wraps [`StdRng`]; implements [`RngCore`] so all of `rand`'s extension
/// methods (`gen_range`, `shuffle`, …) are available.
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: StdRng,
}

impl DetRng {
    /// Create a stream from a root seed.
    pub fn seed_from(seed: u64) -> Self {
        DetRng {
            seed,
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derive an independent child stream for the given domain tag.
    ///
    /// Forking depends only on `(self.seed, tag)` — not on how much of the
    /// parent stream has been consumed — so subsystems can be initialised in
    /// any order without changing each other's randomness.
    pub fn fork(&self, tag: u64) -> DetRng {
        DetRng::seed_from(splitmix64(self.seed ^ splitmix64(tag)))
    }

    /// Derive a child stream tagged by a string (hashes the bytes via
    /// repeated SplitMix64 absorption).
    pub fn fork_named(&self, name: &str) -> DetRng {
        let mut acc = 0xCAFE_F00D_D15E_A5E5u64;
        for chunk in name.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            acc = splitmix64(acc ^ u64::from_le_bytes(word));
        }
        self.fork(acc)
    }

    /// Sample `count` distinct items uniformly from `pool` (partial
    /// Fisher–Yates). If `count >= pool.len()` the whole pool is returned in
    /// shuffled order.
    pub fn sample_without_replacement<T: Copy>(&mut self, pool: &[T], count: usize) -> Vec<T> {
        let mut items: Vec<T> = pool.to_vec();
        let take = count.min(items.len());
        for i in 0..take {
            let j = self.gen_range(i..items.len());
            items.swap(i, j);
        }
        items.truncate(take);
        items
    }
}

impl RngCore for DetRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = DetRng::seed_from(1);
        let mut b = DetRng::seed_from(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn fork_is_independent_of_consumption() {
        let mut parent = DetRng::seed_from(7);
        let child_before = parent.fork(3).next_u64();
        let _ = parent.next_u64(); // consume some of the parent stream
        let child_after = parent.fork(3).next_u64();
        assert_eq!(child_before, child_after);
    }

    #[test]
    fn forks_with_different_tags_differ() {
        let parent = DetRng::seed_from(7);
        assert_ne!(parent.fork(1).next_u64(), parent.fork(2).next_u64());
        assert_ne!(
            parent.fork_named("generator").next_u64(),
            parent.fork_named("scheduler").next_u64()
        );
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_bounded() {
        let mut rng = DetRng::seed_from(11);
        let pool: Vec<u32> = (0..100).collect();
        let sample = rng.sample_without_replacement(&pool, 10);
        assert_eq!(sample.len(), 10);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10, "sampled items must be distinct");

        let all = rng.sample_without_replacement(&pool, 500);
        assert_eq!(all.len(), 100, "oversampling returns the whole pool");
    }

    #[test]
    fn splitmix_is_not_identity_and_mixes() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
