//! A processor-sharing bandwidth resource.
//!
//! Models a disk (or network link) whose capacity is shared equally among
//! all concurrently active transfers — the standard fluid approximation for
//! rotational disks serving several sequential scans. The MapReduce runtime
//! attaches one [`PsResource`] per disk: every running map task is a *flow*
//! of `split-bytes`, and contention between concurrent tasks on the same
//! disk emerges naturally instead of being a fudge factor.
//!
//! ## Contract with the event loop
//!
//! The resource does not know about the event queue. The owner must:
//!
//! 1. call [`PsResource::advance`] (directly or via any `&mut self` method,
//!    which advances internally) whenever simulated time moves,
//! 2. after any flow change, reschedule a wake-up at
//!    [`PsResource::next_completion`] and, when it fires, collect
//!    [`PsResource::take_completed`].
//!
//! `advance` is robust to being called late: it replays completions in the
//! correct order internally, so even a coarse wake-up cadence yields exact
//! per-flow finish amounts (finish *times* are then accurate to the wake-up
//! granularity, which the runtime keeps at 1 ms).

use std::collections::BTreeMap;

use crate::time::{SimDuration, SimTime};

/// Identifier of one transfer on a [`PsResource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowId(u64);

const EPS: f64 = 1e-6;

/// A capacity shared equally among active flows. Units are arbitrary
/// ("work"); the MapReduce cost model uses bytes.
#[derive(Debug, Clone)]
pub struct PsResource {
    capacity_per_ms: f64,
    flows: BTreeMap<u64, f64>, // id -> remaining work; BTreeMap for determinism
    completed: Vec<FlowId>,
    last_update: SimTime,
    next_id: u64,
    drained_total: f64,
}

impl PsResource {
    /// A resource with `capacity_per_sec` units of work per simulated second.
    ///
    /// # Panics
    /// Panics unless the capacity is finite and positive.
    pub fn new(capacity_per_sec: f64) -> Self {
        assert!(
            capacity_per_sec.is_finite() && capacity_per_sec > 0.0,
            "capacity must be positive"
        );
        PsResource {
            capacity_per_ms: capacity_per_sec / 1000.0,
            flows: BTreeMap::new(),
            completed: Vec::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
            drained_total: 0.0,
        }
    }

    /// Full capacity in units per second.
    pub fn capacity_per_sec(&self) -> f64 {
        self.capacity_per_ms * 1000.0
    }

    /// Start a transfer of `amount` units at time `now`.
    ///
    /// A non-positive `amount` completes immediately (it will appear in the
    /// next [`PsResource::take_completed`]).
    pub fn add_flow(&mut self, now: SimTime, amount: f64) -> FlowId {
        self.advance(now);
        let id = FlowId(self.next_id);
        self.next_id += 1;
        if amount <= EPS {
            self.completed.push(id);
        } else {
            self.flows.insert(id.0, amount);
        }
        id
    }

    /// Abort a transfer. Returns the un-transferred remainder, or `None` if
    /// the flow already completed or never existed.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> Option<f64> {
        self.advance(now);
        self.flows.remove(&id.0)
    }

    /// Number of currently active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Remaining work for a flow (`None` once completed/cancelled).
    pub fn remaining(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id.0).copied()
    }

    /// Drain progress up to `now`, replaying any completions that occurred
    /// in `(last_update, now]` in their true order.
    pub fn advance(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        let mut dt_ms = (now - self.last_update).as_millis() as f64;
        self.last_update = now;
        while dt_ms > 0.0 && !self.flows.is_empty() {
            let n = self.flows.len() as f64;
            let rate = self.capacity_per_ms / n; // per-flow drain rate
            let min_remaining = self.flows.values().fold(f64::INFINITY, |a, &b| a.min(b));
            let time_to_first = min_remaining / rate;
            let step = time_to_first.min(dt_ms);
            let drained = rate * step;
            self.drained_total += drained * n;
            let mut done: Vec<u64> = Vec::new();
            for (&id, rem) in self.flows.iter_mut() {
                *rem -= drained;
                if *rem <= EPS {
                    done.push(id);
                }
            }
            for id in done {
                self.flows.remove(&id);
                self.completed.push(FlowId(id));
            }
            dt_ms -= step;
        }
    }

    /// The instant the earliest active flow will complete if no flows are
    /// added or removed, rounded up to the next millisecond. `None` when
    /// idle.
    pub fn next_completion(&self, now: SimTime) -> Option<SimTime> {
        if self.flows.is_empty() {
            return None;
        }
        debug_assert!(now >= self.last_update);
        let n = self.flows.len() as f64;
        let rate = self.capacity_per_ms / n;
        let min_remaining = self.flows.values().fold(f64::INFINITY, |a, &b| a.min(b));
        let already = (now - self.last_update).as_millis() as f64;
        let ms = (min_remaining / rate - already).max(0.0).ceil() as u64;
        Some(now + SimDuration::from_millis(ms))
    }

    /// Flows that have completed since the last call (in completion order).
    pub fn take_completed(&mut self) -> Vec<FlowId> {
        std::mem::take(&mut self.completed)
    }

    /// Total units of work transferred through this resource up to `now`
    /// (used for the paper's "disk reads KB/s" metric).
    pub fn drained_total(&mut self, now: SimTime) -> f64 {
        self.advance(now);
        self.drained_total
    }

    /// Instantaneous throughput: full capacity when any flow is active.
    pub fn current_rate_per_sec(&self) -> f64 {
        if self.flows.is_empty() {
            0.0
        } else {
            self.capacity_per_sec()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn single_flow_runs_at_full_capacity() {
        let mut r = PsResource::new(100.0); // 100 units/s
        let f = r.add_flow(SimTime::ZERO, 500.0);
        assert_eq!(r.next_completion(SimTime::ZERO), Some(t(5)));
        r.advance(t(5));
        assert_eq!(r.take_completed(), vec![f]);
        assert_eq!(r.active_flows(), 0);
        assert!((r.drained_total(t(5)) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn two_flows_share_capacity_equally() {
        let mut r = PsResource::new(100.0);
        let a = r.add_flow(SimTime::ZERO, 100.0);
        let b = r.add_flow(SimTime::ZERO, 100.0);
        // Each proceeds at 50/s → both done at t=2.
        assert_eq!(r.next_completion(SimTime::ZERO), Some(t(2)));
        r.advance(t(2));
        assert_eq!(r.take_completed(), vec![a, b]);
    }

    #[test]
    fn short_flow_finishes_then_long_flow_speeds_up() {
        let mut r = PsResource::new(100.0);
        let short = r.add_flow(SimTime::ZERO, 50.0);
        let long = r.add_flow(SimTime::ZERO, 150.0);
        // short: 50 at 50/s → done t=1; long then has 100 left at 100/s → t=2.
        r.advance(t(1));
        assert_eq!(r.take_completed(), vec![short]);
        assert!((r.remaining(long).unwrap() - 100.0).abs() < 1e-6);
        assert_eq!(r.next_completion(t(1)), Some(t(2)));
    }

    #[test]
    fn late_advance_replays_completions_in_order() {
        let mut r = PsResource::new(100.0);
        let short = r.add_flow(SimTime::ZERO, 50.0);
        let long = r.add_flow(SimTime::ZERO, 150.0);
        // Advance straight past both completions.
        r.advance(t(10));
        assert_eq!(r.take_completed(), vec![short, long]);
        assert!((r.drained_total(t(10)) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn mid_flight_arrival_slows_existing_flow() {
        let mut r = PsResource::new(100.0);
        let a = r.add_flow(SimTime::ZERO, 100.0);
        // At t=0.5s, a has 50 left; a second flow arrives.
        let b = r.add_flow(SimTime::from_millis(500), 200.0);
        // a: 50 left at 50/s → completes at t=1.5s.
        assert_eq!(
            r.next_completion(SimTime::from_millis(500)),
            Some(SimTime::from_millis(1500))
        );
        r.advance(SimTime::from_millis(1500));
        assert_eq!(r.take_completed(), vec![a]);
        // b: consumed 50 so far, 150 left at 100/s → t=3.0s.
        assert!((r.remaining(b).unwrap() - 150.0).abs() < 1e-6);
        assert_eq!(r.next_completion(SimTime::from_millis(1500)), Some(t(3)));
    }

    #[test]
    fn cancel_returns_remainder() {
        let mut r = PsResource::new(100.0);
        let a = r.add_flow(SimTime::ZERO, 100.0);
        let rem = r.cancel_flow(SimTime::from_millis(500), a);
        assert!((rem.unwrap() - 50.0).abs() < 1e-6);
        assert_eq!(r.cancel_flow(t(1), a), None);
        assert_eq!(r.active_flows(), 0);
    }

    #[test]
    fn zero_amount_flow_completes_immediately() {
        let mut r = PsResource::new(10.0);
        let f = r.add_flow(SimTime::ZERO, 0.0);
        assert_eq!(r.take_completed(), vec![f]);
    }

    #[test]
    fn conservation_of_work() {
        // Whatever the arrival pattern, drained_total equals the sum of
        // completed amounts plus consumed fractions of active flows.
        let mut r = PsResource::new(77.0);
        r.add_flow(SimTime::ZERO, 100.0);
        r.add_flow(SimTime::from_millis(300), 250.0);
        r.add_flow(SimTime::from_millis(900), 40.0);
        r.advance(t(2));
        let active_remaining: f64 = (0..3).filter_map(|i| r.remaining(FlowId(i))).sum();
        let drained = r.drained_total(t(2));
        let injected = 390.0;
        assert!(
            (injected - active_remaining - drained).abs() < 1e-3,
            "drained {drained} + remaining {active_remaining} != injected {injected}"
        );
    }

    #[test]
    fn idle_resource_reports_no_completion_and_zero_rate() {
        let mut r = PsResource::new(10.0);
        assert_eq!(r.next_completion(SimTime::ZERO), None);
        assert_eq!(r.current_rate_per_sec(), 0.0);
        r.add_flow(SimTime::ZERO, 5.0);
        assert_eq!(r.current_rate_per_sec(), 10.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = PsResource::new(0.0);
    }
}
