//! The future-event list: a cancelable, deterministic priority queue plus the
//! simulation clock.
//!
//! Determinism matters: two events scheduled for the same instant are
//! delivered in scheduling order (FIFO within a timestamp), so a simulation
//! run is a pure function of its seeds.
//!
//! Cancellation is lazy: [`Sim::cancel`] removes the payload immediately, and
//! the heap entry is discarded when it surfaces. This makes cancel `O(1)`
//! (amortised) which the processor-sharing disk model relies on — every flow
//! change cancels and reschedules a completion event.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(u64);

/// Why a driver loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No events remained in the queue.
    QueueEmpty,
    /// The configured time limit was reached with events still pending.
    TimeLimit,
}

#[derive(PartialEq, Eq)]
struct HeapEntry {
    time: SimTime,
    seq: u64,
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The simulation clock and pending-event queue.
///
/// `Sim` is intentionally dumb: it knows nothing about what events *mean*.
/// Domain logic lives in a [`crate::Handler`] driven by [`crate::run_until`].
pub struct Sim<E> {
    now: SimTime,
    heap: BinaryHeap<Reverse<HeapEntry>>,
    payloads: HashMap<u64, E>,
    next_seq: u64,
    scheduled_total: u64,
    delivered_total: u64,
    cancelled_total: u64,
}

impl<E> Default for Sim<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Sim<E> {
    /// An empty simulation with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Sim {
            now: SimTime::ZERO,
            heap: BinaryHeap::new(),
            payloads: HashMap::new(),
            next_seq: 0,
            scheduled_total: 0,
            delivered_total: 0,
            cancelled_total: 0,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — delivering events before `now` would
    /// break causality and always indicates a bug in the caller.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(HeapEntry { time: at, seq }));
        self.payloads.insert(seq, event);
        EventId(seq)
    }

    /// Schedule `event` to fire `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventId {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancel a pending event, returning its payload if it had not yet fired.
    pub fn cancel(&mut self, id: EventId) -> Option<E> {
        let removed = self.payloads.remove(&id.0);
        if removed.is_some() {
            self.cancelled_total += 1;
        }
        removed
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Remove and return the next event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_dead();
        let Reverse(entry) = self.heap.pop()?;
        let payload = self
            .payloads
            .remove(&entry.seq)
            .expect("skip_dead guarantees a live payload at the heap top");
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.delivered_total += 1;
        Some((entry.time, payload))
    }

    /// Move the clock forward without delivering events (used when a run
    /// stops at a time limit). No-op if `to` is not in the future.
    pub fn advance_to(&mut self, to: SimTime) {
        if to > self.now {
            self.now = to;
        }
    }

    /// Number of live (not cancelled, not delivered) events.
    pub fn pending(&self) -> usize {
        self.payloads.len()
    }

    /// Lifetime counters: `(scheduled, delivered, cancelled)`.
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.scheduled_total,
            self.delivered_total,
            self.cancelled_total,
        )
    }

    fn skip_dead(&mut self) {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.payloads.contains_key(&entry.seq) {
                return;
            }
            self.heap.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order_fifo_within_timestamp() {
        let mut sim: Sim<&str> = Sim::new();
        sim.schedule_at(SimTime::from_secs(2), "b1");
        sim.schedule_at(SimTime::from_secs(1), "a");
        sim.schedule_at(SimTime::from_secs(2), "b2");
        let order: Vec<_> = std::iter::from_fn(|| sim.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b1", "b2"]);
    }

    #[test]
    fn pop_advances_clock() {
        let mut sim: Sim<u8> = Sim::new();
        sim.schedule_at(SimTime::from_secs(3), 1);
        assert_eq!(sim.now(), SimTime::ZERO);
        sim.pop();
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    #[test]
    fn cancel_prevents_delivery_and_returns_payload() {
        let mut sim: Sim<u8> = Sim::new();
        let keep = sim.schedule_at(SimTime::from_secs(1), 1);
        let drop = sim.schedule_at(SimTime::from_secs(2), 2);
        assert_eq!(sim.cancel(drop), Some(2));
        assert_eq!(sim.cancel(drop), None, "double cancel is a no-op");
        assert_eq!(sim.pending(), 1);
        assert_eq!(sim.pop(), Some((SimTime::from_secs(1), 1)));
        assert_eq!(sim.pop(), None);
        let _ = keep;
    }

    #[test]
    fn cancelled_head_is_skipped_by_peek() {
        let mut sim: Sim<u8> = Sim::new();
        let head = sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(5), 2);
        sim.cancel(head);
        assert_eq!(sim.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim: Sim<u8> = Sim::new();
        sim.schedule_at(SimTime::from_secs(5), 1);
        sim.pop();
        sim.schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn counters_track_lifecycle() {
        let mut sim: Sim<u8> = Sim::new();
        let a = sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(2), 2);
        sim.cancel(a);
        sim.pop();
        assert_eq!(sim.counters(), (2, 1, 1));
    }
}
